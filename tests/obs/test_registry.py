"""Unit tests for the metrics registry: arithmetic and quantiles."""

from __future__ import annotations

import math

import pytest

from repro.errors import ReproError
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ReproError):
            Counter("x").inc(-1)

    def test_snapshot(self):
        c = Counter("x")
        c.inc(4)
        assert c.snapshot() == {"kind": "counter", "value": 4.0}


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("x")
        assert math.isnan(g.value)
        g.set(3)
        g.set(-1.5)
        assert g.value == -1.5
        assert g.snapshot()["value"] == -1.5


class TestHistogram:
    def test_count_sum_min_max_mean(self):
        h = Histogram("x")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 10.0
        assert h.min == 1.0
        assert h.max == 4.0
        assert h.mean == 2.5

    def test_quantiles_nearest_rank(self):
        h = Histogram("x")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.quantile(0.50) == 50.0
        assert h.quantile(0.90) == 90.0
        assert h.quantile(0.99) == 99.0
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 100.0

    def test_empty_quantile_is_nan(self):
        assert math.isnan(Histogram("x").quantile(0.5))

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ReproError):
            Histogram("x").quantile(1.5)

    def test_decimation_keeps_exact_count_and_sum(self):
        h = Histogram("x", max_samples=64)
        n = 10_000
        for v in range(n):
            h.observe(float(v))
        assert h.count == n
        assert h.sum == sum(range(n))
        assert h.min == 0.0 and h.max == n - 1
        assert len(h._samples) < 64
        # Decimated quantiles stay in the right neighborhood.
        assert abs(h.quantile(0.5) - n / 2) < n * 0.1

    def test_decimated_view_keeps_min_and_max(self):
        # 10x max_samples forces several stride doublings; the extreme
        # quantiles must still be the true observed extremes.
        h = Histogram("x", max_samples=64)
        n = 640
        for v in range(n):
            h.observe(float(v))
        assert h._stride > 1
        assert h.quantile(0.0) == 0.0
        assert h.quantile(1.0) == float(n - 1)

    def test_decimated_max_survives_when_observed_first(self):
        # Regression test for the decimation bias: a max observed early
        # is the most likely sample to be dropped by [::2] halving, so
        # p99/max silently under-reported before min/max were folded
        # back into the quantile view.
        h = Histogram("x", max_samples=64)
        n = 1000
        for v in reversed(range(n)):
            h.observe(float(v))
        assert h.quantile(1.0) == float(n - 1)
        assert h.quantile(0.0) == 0.0
        assert h.quantile(0.99) >= 0.9 * (n - 1)

    def test_decimated_snapshot_p99_sees_the_tail(self):
        h = Histogram("x", max_samples=64)
        n = 640
        for v in range(n):
            h.observe(float(v))
        snap = h.snapshot()
        assert snap["max"] == float(n - 1)
        assert snap["p99"] >= 0.9 * (n - 1)

    def test_snapshot_shape(self):
        h = Histogram("x")
        h.observe(2.0)
        snap = h.snapshot()
        assert snap["kind"] == "histogram"
        assert {"count", "sum", "min", "max", "mean",
                "p50", "p90", "p99"} <= set(snap)


class TestMetricsRegistry:
    def test_create_on_first_use(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc()
        assert reg.counter("a.b").value == 1
        assert reg.names() == ["a.b"]

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ReproError):
            reg.gauge("a")

    def test_bad_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ReproError):
            reg.counter("")
        with pytest.raises(ReproError):
            reg.counter(" padded ")

    def test_timer_records_into_histogram(self):
        reg = MetricsRegistry()
        with reg.timer("t_s"):
            pass
        hist = reg.histogram("t_s")
        assert hist.count == 1
        assert hist.sum >= 0

    def test_snapshot_and_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(7)
        snap = reg.snapshot()
        assert snap["c"]["value"] == 2
        assert snap["g"]["value"] == 7
        reg.reset()
        assert len(reg) == 0
        assert reg.snapshot() == {}

    def test_get_missing_is_none(self):
        assert MetricsRegistry().get("nope") is None
