"""Unit tests for the shared statistics helpers.

These helpers back three consumers — ``Histogram.quantile``,
``SimulationResult.p99_fct`` and the monitor's link statistics — so the
semantics pinned here are the single source of percentile/inequality
truth for the whole repository.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import ReproError
from repro.obs import (
    Ewma,
    WindowedQuantile,
    gini,
    nearest_rank_quantile,
    quantile_summary,
)


class TestNearestRankQuantile:
    def test_endpoints_are_min_and_max(self):
        values = [5.0, 1.0, 3.0]
        assert nearest_rank_quantile(values, 0.0) == 1.0
        assert nearest_rank_quantile(values, 1.0) == 5.0

    def test_median_of_even_count_is_lower_middle(self):
        # Nearest-rank (inclusive): ceil(0.5 * 4) = rank 2.
        assert nearest_rank_quantile([1, 2, 3, 4], 0.5) == 2

    def test_p99_needs_hundred_samples_to_leave_max(self):
        values = list(range(100))
        assert nearest_rank_quantile(values, 0.99) == 98
        assert nearest_rank_quantile(values[:50], 0.99) == 49

    def test_accepts_any_iterable(self):
        assert nearest_rank_quantile((v for v in (2.0, 1.0)), 1.0) == 2.0

    def test_empty_is_nan(self):
        assert math.isnan(nearest_rank_quantile([], 0.5))

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ReproError):
            nearest_rank_quantile([1.0], 1.5)
        with pytest.raises(ReproError):
            nearest_rank_quantile([1.0], -0.1)

    def test_matches_histogram_and_simulation(self):
        """The three consumers share this exact implementation."""
        from repro.flowsim.simulator import CompletedFlow, SimulationResult
        from repro.flowsim.simulator import FlowSpec
        from repro.obs.registry import Histogram

        durations = [3.0, 1.0, 2.0, 5.0, 4.0]
        hist = Histogram("h")
        for value in durations:
            hist.observe(value)
        completed = [
            CompletedFlow(FlowSpec(i, 0, 1, size=1.0), start=0.0,
                          finish=d, path_hops=1)
            for i, d in enumerate(durations)
        ]
        expected = nearest_rank_quantile(durations, 0.99)
        assert hist.quantile(0.99) == expected
        assert SimulationResult(completed=completed).p99_fct == expected


class TestGini:
    def test_uniform_is_zero(self):
        assert gini([0.5, 0.5, 0.5, 0.5]) == pytest.approx(0.0)

    def test_single_hog_approaches_one(self):
        # One of n links carries everything: gini = (n - 1) / n.
        assert gini([0, 0, 0, 1.0]) == pytest.approx(0.75)
        assert gini([0] * 99 + [1.0]) == pytest.approx(0.99)

    def test_known_value(self):
        # [1, 3]: |1-3| * 2 pairs / (2 * n^2 * mean) = 4 / 16 = 0.25.
        assert gini([1.0, 3.0]) == pytest.approx(0.25)

    def test_scale_invariant(self):
        values = [0.1, 0.4, 0.2, 0.8]
        assert gini(values) == pytest.approx(
            gini([v * 1000 for v in values])
        )

    def test_empty_and_all_zero_are_zero(self):
        assert gini([]) == 0.0
        assert gini([0.0, 0.0]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            gini([1.0, -0.5])


class TestEwma:
    def test_first_observation_seeds_exactly(self):
        e = Ewma(alpha=0.2)
        assert math.isnan(e.value)
        assert e.update(10.0) == 10.0
        assert e.count == 1

    def test_update_is_the_standard_recurrence(self):
        e = Ewma(alpha=0.5)
        e.update(0.0)
        assert e.update(1.0) == pytest.approx(0.5)
        assert e.update(1.0) == pytest.approx(0.75)

    def test_alpha_one_tracks_the_last_value(self):
        e = Ewma(alpha=1.0)
        e.update(3.0)
        assert e.update(7.0) == 7.0

    def test_from_half_life(self):
        e = Ewma.from_half_life(1.0)
        assert e.alpha == pytest.approx(0.5)
        # after `half_life` updates from 1 toward 0, half remains
        e.update(1.0)
        e.update(0.0)
        assert e.value == pytest.approx(0.5)

    def test_invalid_alpha_and_half_life_rejected(self):
        for alpha in (0.0, -0.1, 1.5):
            with pytest.raises(ReproError):
                Ewma(alpha=alpha)
        with pytest.raises(ReproError):
            Ewma.from_half_life(0.0)


class TestWindowedQuantile:
    def test_window_evicts_oldest(self):
        w = WindowedQuantile(window=3)
        for v in (1.0, 2.0, 3.0, 4.0):
            w.push(v)
        assert len(w) == 3
        assert w.count == 4          # all-time count keeps running
        assert w.quantile(0.0) == 2.0
        assert w.quantile(1.0) == 4.0

    def test_quantiles_match_nearest_rank(self):
        w = WindowedQuantile(window=100)
        values = [float(v) for v in range(50)]
        for v in values:
            w.push(v)
        assert w.quantile(0.99) == nearest_rank_quantile(values, 0.99)
        assert w.summary() == quantile_summary(values)

    def test_mean_is_all_time_and_last_is_latest(self):
        w = WindowedQuantile(window=2)
        for v in (1.0, 2.0, 9.0):
            w.push(v)
        assert w.mean == pytest.approx(4.0)
        assert w.last == 9.0

    def test_empty_window_is_nan(self):
        w = WindowedQuantile(window=4)
        assert math.isnan(w.quantile(0.5))
        assert math.isnan(w.mean)

    def test_invalid_window_rejected(self):
        with pytest.raises(ReproError):
            WindowedQuantile(window=0)


class TestQuantileSummary:
    def test_labels_and_values(self):
        values = [float(v) for v in range(100)]
        summary = quantile_summary(values)
        assert sorted(summary) == ["p50", "p90", "p99"]
        assert summary["p50"] == nearest_rank_quantile(values, 0.50)
        assert summary["p99"] == nearest_rank_quantile(values, 0.99)

    def test_histogram_snapshot_uses_the_shared_summary(self):
        """Dedupe proof: Histogram quantile labels == quantile_summary."""
        from repro.obs.registry import Histogram

        hist = Histogram("h")
        for v in (3.0, 1.0, 2.0):
            hist.observe(v)
        snapshot = hist.snapshot()
        for label, value in quantile_summary([3.0, 1.0, 2.0]).items():
            assert snapshot[label] == value
