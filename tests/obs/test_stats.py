"""Unit tests for the shared statistics helpers.

These helpers back three consumers — ``Histogram.quantile``,
``SimulationResult.p99_fct`` and the monitor's link statistics — so the
semantics pinned here are the single source of percentile/inequality
truth for the whole repository.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import ReproError
from repro.obs import gini, nearest_rank_quantile


class TestNearestRankQuantile:
    def test_endpoints_are_min_and_max(self):
        values = [5.0, 1.0, 3.0]
        assert nearest_rank_quantile(values, 0.0) == 1.0
        assert nearest_rank_quantile(values, 1.0) == 5.0

    def test_median_of_even_count_is_lower_middle(self):
        # Nearest-rank (inclusive): ceil(0.5 * 4) = rank 2.
        assert nearest_rank_quantile([1, 2, 3, 4], 0.5) == 2

    def test_p99_needs_hundred_samples_to_leave_max(self):
        values = list(range(100))
        assert nearest_rank_quantile(values, 0.99) == 98
        assert nearest_rank_quantile(values[:50], 0.99) == 49

    def test_accepts_any_iterable(self):
        assert nearest_rank_quantile((v for v in (2.0, 1.0)), 1.0) == 2.0

    def test_empty_is_nan(self):
        assert math.isnan(nearest_rank_quantile([], 0.5))

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ReproError):
            nearest_rank_quantile([1.0], 1.5)
        with pytest.raises(ReproError):
            nearest_rank_quantile([1.0], -0.1)

    def test_matches_histogram_and_simulation(self):
        """The three consumers share this exact implementation."""
        from repro.flowsim.simulator import CompletedFlow, SimulationResult
        from repro.flowsim.simulator import FlowSpec
        from repro.obs.registry import Histogram

        durations = [3.0, 1.0, 2.0, 5.0, 4.0]
        hist = Histogram("h")
        for value in durations:
            hist.observe(value)
        completed = [
            CompletedFlow(FlowSpec(i, 0, 1, size=1.0), start=0.0,
                          finish=d, path_hops=1)
            for i, d in enumerate(durations)
        ]
        expected = nearest_rank_quantile(durations, 0.99)
        assert hist.quantile(0.99) == expected
        assert SimulationResult(completed=completed).p99_fct == expected


class TestGini:
    def test_uniform_is_zero(self):
        assert gini([0.5, 0.5, 0.5, 0.5]) == pytest.approx(0.0)

    def test_single_hog_approaches_one(self):
        # One of n links carries everything: gini = (n - 1) / n.
        assert gini([0, 0, 0, 1.0]) == pytest.approx(0.75)
        assert gini([0] * 99 + [1.0]) == pytest.approx(0.99)

    def test_known_value(self):
        # [1, 3]: |1-3| * 2 pairs / (2 * n^2 * mean) = 4 / 16 = 0.25.
        assert gini([1.0, 3.0]) == pytest.approx(0.25)

    def test_scale_invariant(self):
        values = [0.1, 0.4, 0.2, 0.8]
        assert gini(values) == pytest.approx(
            gini([v * 1000 for v in values])
        )

    def test_empty_and_all_zero_are_zero(self):
        assert gini([]) == 0.0
        assert gini([0.0, 0.0]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            gini([1.0, -0.5])
