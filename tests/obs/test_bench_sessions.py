"""Sequence discovery for durable BENCH_<seq>.json sessions."""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.obs import bench


def touch(tmp_path, name):
    (tmp_path / name).write_text("{}\n", encoding="utf-8")


class TestBenchPaths:
    def test_empty_directory(self, tmp_path):
        assert bench.bench_paths(tmp_path) == []

    def test_sorted_numerically_not_lexically(self, tmp_path):
        for name in ("BENCH_10.json", "BENCH_2.json", "BENCH_1.json"):
            touch(tmp_path, name)
        names = [p.name for p in bench.bench_paths(tmp_path)]
        assert names == ["BENCH_1.json", "BENCH_2.json", "BENCH_10.json"]

    def test_gaps_in_the_sequence_survive(self, tmp_path):
        touch(tmp_path, "BENCH_1.json")
        touch(tmp_path, "BENCH_3.json")
        names = [p.name for p in bench.bench_paths(tmp_path)]
        assert names == ["BENCH_1.json", "BENCH_3.json"]

    def test_free_form_tags_ignored(self, tmp_path):
        touch(tmp_path, "BENCH_1.json")
        touch(tmp_path, "BENCH_smoke.json")
        touch(tmp_path, "BENCH_.json")
        touch(tmp_path, "BENCH_1.json.bak")
        names = [p.name for p in bench.bench_paths(tmp_path)]
        assert names == ["BENCH_1.json"]


class TestNextBenchPath:
    def test_first_slot_is_one(self, tmp_path):
        assert bench.next_bench_path(tmp_path).name == "BENCH_1.json"

    def test_next_is_max_plus_one_even_with_gaps(self, tmp_path):
        touch(tmp_path, "BENCH_1.json")
        touch(tmp_path, "BENCH_3.json")
        assert bench.next_bench_path(tmp_path).name == "BENCH_4.json"

    def test_tags_never_claim_a_slot(self, tmp_path):
        touch(tmp_path, "BENCH_smoke.json")
        assert bench.next_bench_path(tmp_path).name == "BENCH_1.json"


class TestLoadSession:
    def test_rejects_non_object(self, tmp_path):
        path = tmp_path / "BENCH_1.json"
        path.write_text(json.dumps([1, 2]), encoding="utf-8")
        with pytest.raises(ReproError, match="not a JSON object"):
            bench.load_session(path)
