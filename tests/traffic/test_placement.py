"""Unit and property tests for placement policies."""

from __future__ import annotations

import random
from collections import Counter

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TrafficError
from repro.topology.clos import fat_tree_params
from repro.traffic.placement import (
    place_continuous,
    place_random_global,
    place_random_in_pods,
    placement_by_name,
    pod_groups,
)


class TestContinuous:
    def test_identity_when_members_fit(self):
        assert place_continuous(5, 10) == [0, 1, 2, 3, 4]

    def test_wraps_when_members_exceed(self):
        assert place_continuous(5, 3) == [0, 1, 2, 0, 1]

    def test_validation(self):
        with pytest.raises(TrafficError):
            place_continuous(0, 10)
        with pytest.raises(TrafficError):
            place_continuous(5, 0)


class TestRandomGlobal:
    def test_no_repeats_when_members_fit(self):
        placement = place_random_global(10, 50, random.Random(0))
        assert len(set(placement)) == 10

    def test_balanced_wrap(self):
        placement = place_random_global(25, 10, random.Random(0))
        counts = Counter(placement)
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_seeded_determinism(self):
        a = place_random_global(10, 50, random.Random(3))
        b = place_random_global(10, 50, random.Random(3))
        assert a == b


class TestRandomInPods:
    def test_cluster_stays_in_one_pod_when_it_fits(self):
        params = fat_tree_params(8)  # 16 servers per pod
        placement = place_random_in_pods(16 * 4, params, 16, random.Random(0))
        for start in range(0, len(placement), 16):
            chunk = placement[start:start + 16]
            pods = {params.server_pod(s) for s in chunk}
            assert len(pods) == 1

    def test_each_server_used_once_when_members_fit(self):
        params = fat_tree_params(4)
        placement = place_random_in_pods(16, params, 4, random.Random(0))
        assert sorted(placement) == list(range(16))

    def test_spills_across_pods_when_cluster_exceeds_pod(self):
        params = fat_tree_params(4)  # 4 servers per pod
        placement = place_random_in_pods(8, params, 8, random.Random(0))
        pods = {params.server_pod(s) for s in placement}
        assert len(pods) >= 2

    def test_wraps_when_pool_exhausted(self):
        params = fat_tree_params(4)  # 16 servers total
        placement = place_random_in_pods(32, params, 16, random.Random(0))
        counts = Counter(placement)
        assert max(counts.values()) == 2

    def test_multiple_of_cluster_size_required(self):
        params = fat_tree_params(4)
        with pytest.raises(TrafficError):
            place_random_in_pods(10, params, 4, random.Random(0))


class TestDispatch:
    @pytest.mark.parametrize(
        "name", ["locality", "weak locality", "no locality"]
    )
    def test_known_names(self, name):
        params = fat_tree_params(4)
        placement = placement_by_name(name, 16, params, 4, random.Random(0))
        assert len(placement) == 16
        assert all(0 <= s < params.num_servers for s in placement)

    def test_unknown_name(self):
        params = fat_tree_params(4)
        with pytest.raises(TrafficError):
            placement_by_name("sideways", 16, params, 4, random.Random(0))


def test_pod_groups_cover_all_servers():
    params = fat_tree_params(6)
    groups = pod_groups(params)
    flat = [s for g in groups for s in g]
    assert sorted(flat) == list(range(params.num_servers))


@given(
    st.sampled_from(["locality", "weak locality", "no locality"]),
    st.sampled_from([4, 6, 8]),
    st.integers(min_value=0, max_value=100),
)
def test_property_placements_cover_members(name, k, seed):
    """Every policy returns exactly the requested number of members and
    balances the wrap when members exceed the pool."""
    params = fat_tree_params(k)
    cluster = 10
    members = 2 * params.num_servers // cluster * cluster or cluster
    placement = placement_by_name(
        name, members, params, cluster, random.Random(seed)
    )
    assert len(placement) == members
    counts = Counter(placement)
    assert max(counts.values()) - min(counts.values()) <= 1 or name != "locality"
