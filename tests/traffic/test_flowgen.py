"""Unit and property tests for flow workload generation."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TrafficError
from repro.traffic.flowgen import (
    DATA_MINING,
    FIXED_UNIT,
    UNIFORM,
    WEB_SEARCH,
    SizeCDF,
    hotspot_pairs,
    poisson_flows,
    uniform_pairs,
)


class TestSizeCDF:
    def test_knot_validation(self):
        with pytest.raises(TrafficError):
            SizeCDF("bad", ((1.0, 0.0),))
        with pytest.raises(TrafficError):
            SizeCDF("bad", ((1.0, 0.0), (0.5, 1.0)))  # sizes decrease
        with pytest.raises(TrafficError):
            SizeCDF("bad", ((1.0, 0.0), (2.0, 0.5)))  # ends below 1

    def test_samples_within_support(self):
        rng = random.Random(0)
        for cdf in (WEB_SEARCH, DATA_MINING, UNIFORM):
            lo = cdf.knots[0][0]
            hi = cdf.knots[-1][0]
            for _ in range(500):
                assert lo <= cdf.sample(rng) <= hi

    def test_fixed_unit_is_constant(self):
        rng = random.Random(0)
        assert all(
            FIXED_UNIT.sample(rng) == pytest.approx(1.0, abs=1e-9)
            for _ in range(50)
        )

    def test_means_normalized_to_order_one(self):
        for cdf in (WEB_SEARCH, DATA_MINING, UNIFORM):
            assert 0.3 <= cdf.mean(samples=5000) <= 3.0

    def test_data_mining_heavier_tail(self):
        """More mice AND bigger elephants than web-search."""
        rng = random.Random(1)
        dm = sorted(DATA_MINING.sample(rng) for _ in range(4000))
        rng = random.Random(1)
        ws = sorted(WEB_SEARCH.sample(rng) for _ in range(4000))
        assert dm[2000] < ws[2000]   # median mouse-ier
        assert dm[-10] > ws[-10]     # tail heavier


class TestPairPickers:
    def test_uniform_pairs_distinct(self):
        pick = uniform_pairs(range(10))
        rng = random.Random(0)
        for _ in range(200):
            a, b = pick(rng)
            assert a != b
            assert 0 <= a < 10 and 0 <= b < 10

    def test_uniform_needs_two(self):
        with pytest.raises(TrafficError):
            uniform_pairs([1])

    def test_hotspot_pairs_always_touch_hotspot(self):
        pick = hotspot_pairs(range(10), hotspot=3)
        rng = random.Random(0)
        for _ in range(200):
            a, b = pick(rng)
            assert 3 in (a, b)
            assert a != b

    def test_incast_fraction_extremes(self):
        rng = random.Random(0)
        all_in = hotspot_pairs(range(5), 0, incast_fraction=1.0)
        assert all(all_in(rng)[1] == 0 for _ in range(50))
        all_out = hotspot_pairs(range(5), 0, incast_fraction=0.0)
        assert all(all_out(rng)[0] == 0 for _ in range(50))

    def test_bad_fraction(self):
        with pytest.raises(TrafficError):
            hotspot_pairs(range(5), 0, incast_fraction=1.5)


class TestPoissonFlows:
    def test_arrivals_sorted_within_duration(self):
        flows = poisson_flows(
            uniform_pairs(range(8)), rate=50, duration=2.0,
            rng=random.Random(0),
        )
        arrivals = [f.arrival for f in flows]
        assert arrivals == sorted(arrivals)
        assert all(0 <= a < 2.0 for a in arrivals)

    def test_rate_controls_count(self):
        low = poisson_flows(uniform_pairs(range(8)), 10, 5.0,
                            rng=random.Random(0))
        high = poisson_flows(uniform_pairs(range(8)), 100, 5.0,
                             rng=random.Random(0))
        assert len(high) > 3 * len(low)

    def test_ids_unique_and_offset(self):
        flows = poisson_flows(uniform_pairs(range(8)), 30, 1.0,
                              rng=random.Random(0), start_id=100)
        ids = [f.flow_id for f in flows]
        assert len(set(ids)) == len(ids)
        assert min(ids) == 100

    def test_validation(self):
        with pytest.raises(TrafficError):
            poisson_flows(uniform_pairs(range(8)), 0, 1.0)
        with pytest.raises(TrafficError):
            poisson_flows(uniform_pairs(range(8)), 10, 0)

    def test_feeds_the_simulator(self, path3):
        """End to end: generated flows run through the fluid simulator."""
        from repro.flowsim.simulator import FlowSimulator
        from repro.routing.base import Path
        from repro.topology.elements import PlainSwitch

        def router(src, dst, _fid):
            a = path3.server_switch(src)
            b = path3.server_switch(dst)
            if a == b:
                return Path((a,))
            return Path((PlainSwitch(0), PlainSwitch(1), PlainSwitch(2)))

        flows = poisson_flows(
            uniform_pairs([0, 1]), rate=20, duration=1.0,
            sizes=FIXED_UNIT, rng=random.Random(0),
        )
        result = FlowSimulator(path3, router).run(flows)
        assert len(result.completed) == len(flows)


@given(st.integers(min_value=0, max_value=1000))
def test_property_samples_monotone_in_u(seed):
    """Inverse-transform sampling respects the CDF's ordering."""
    rng = random.Random(seed)
    samples = sorted(WEB_SEARCH.sample(rng) for _ in range(100))
    assert samples[0] >= WEB_SEARCH.knots[0][0]
    assert samples[-1] <= WEB_SEARCH.knots[-1][0]
