"""Unit tests for traffic patterns."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.errors import TrafficError
from repro.traffic.clusters import Cluster
from repro.traffic.patterns import (
    all_to_all_commodities,
    broadcast_commodities,
    incast_commodities,
    permutation_commodities,
    uniform_commodities,
)


@pytest.fixture()
def cluster():
    return Cluster(members=(10, 20, 30, 40), hotspot=1)


class TestBroadcast:
    def test_hotspot_to_everyone(self, cluster):
        comms = broadcast_commodities([cluster])
        assert len(comms) == 3
        assert all(c.src == 20 for c in comms)
        assert {c.dst for c in comms} == {10, 30, 40}

    def test_wrapped_hotspot_server_skipped(self):
        # Member 2 shares the hotspot's server; no self-commodity.
        c = Cluster(members=(10, 20, 20, 30), hotspot=1)
        comms = broadcast_commodities([c])
        assert {x.dst for x in comms} == {10, 30}

    def test_multiple_clusters_concat(self, cluster):
        other = Cluster(members=(50, 60), hotspot=0)
        comms = broadcast_commodities([cluster, other])
        assert len(comms) == 4

    def test_needs_hotspot(self):
        c = Cluster(members=(1, 2))
        with pytest.raises(TrafficError):
            broadcast_commodities([c])


class TestIncast:
    def test_reverse_of_broadcast(self, cluster):
        fwd = broadcast_commodities([cluster])
        rev = incast_commodities([cluster])
        assert {(c.src, c.dst) for c in rev} == {
            (c.dst, c.src) for c in fwd
        }


class TestAllToAll:
    def test_ordered_pairs(self, cluster):
        comms = all_to_all_commodities([cluster])
        assert len(comms) == 4 * 3
        pairs = Counter((c.src, c.dst) for c in comms)
        assert pairs[(10, 20)] == 1
        assert pairs[(20, 10)] == 1

    def test_wrapped_members_skip_self_pairs(self):
        c = Cluster(members=(10, 10, 20))
        comms = all_to_all_commodities([c])
        pairs = Counter((x.src, x.dst) for x in comms)
        assert (10, 10) not in pairs
        assert pairs[(10, 20)] == 2  # both wrapped members talk to 20

    def test_fully_colocated_cluster_raises(self):
        c = Cluster(members=(7, 7, 7))
        with pytest.raises(TrafficError):
            all_to_all_commodities([c])


class TestPermutation:
    def test_no_fixed_points(self):
        servers = list(range(10))
        comms = permutation_commodities(servers, random.Random(0))
        assert len(comms) == 10
        assert all(c.src != c.dst for c in comms)
        assert Counter(c.dst for c in comms) == Counter(servers)

    def test_needs_two_servers(self):
        with pytest.raises(TrafficError):
            permutation_commodities([1], random.Random(0))


class TestUniform:
    def test_pair_count(self):
        comms = uniform_commodities(list(range(10)), 25, random.Random(0))
        assert len(comms) == 25
        assert all(c.src != c.dst for c in comms)

    def test_needs_two_servers(self):
        with pytest.raises(TrafficError):
            uniform_commodities([3], 5, random.Random(0))
