"""Unit tests for service clusters."""

from __future__ import annotations

import random

import pytest

from repro.errors import TrafficError
from repro.traffic.clusters import Cluster, cluster_count, make_clusters


class TestCluster:
    def test_minimum_size(self):
        with pytest.raises(TrafficError):
            Cluster(members=(1,))

    def test_hotspot_range_checked(self):
        with pytest.raises(TrafficError):
            Cluster(members=(1, 2), hotspot=2)

    def test_hotspot_server(self):
        c = Cluster(members=(10, 20, 30), hotspot=1)
        assert c.hotspot_server == 20

    def test_hotspot_missing_raises(self):
        c = Cluster(members=(10, 20))
        with pytest.raises(TrafficError):
            _ = c.hotspot_server

    def test_wrapped_members_allowed(self):
        # Logical members may share a server (small-k wrap, see module doc).
        c = Cluster(members=(5, 5, 7), hotspot=0)
        assert c.size == 3


class TestClusterCount:
    def test_disjoint_clusters(self):
        assert cluster_count(128, 20) == 6

    def test_wrapped_single_cluster(self):
        assert cluster_count(16, 20) == 1
        assert cluster_count(999, 1000) == 1

    def test_exact_fit(self):
        assert cluster_count(100, 20) == 5

    def test_bad_size(self):
        with pytest.raises(TrafficError):
            cluster_count(100, 1)


class TestMakeClusters:
    def test_slices_in_order(self):
        placement = list(range(40))
        clusters = make_clusters(placement, 20)
        assert len(clusters) == 2
        assert clusters[0].members == tuple(range(20))
        assert clusters[1].members == tuple(range(20, 40))

    def test_length_must_divide(self):
        with pytest.raises(TrafficError):
            make_clusters(list(range(30)), 20)

    def test_hotspots_assigned_and_seeded(self):
        placement = list(range(60))
        a = make_clusters(placement, 20, random.Random(5), with_hotspots=True)
        b = make_clusters(placement, 20, random.Random(5), with_hotspots=True)
        assert all(c.hotspot is not None for c in a)
        assert [c.hotspot for c in a] == [c.hotspot for c in b]

    def test_no_hotspots_by_default(self):
        clusters = make_clusters(list(range(20)), 20)
        assert clusters[0].hotspot is None
