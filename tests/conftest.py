"""Shared fixtures: small topologies reused across the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import settings

from repro.core.conversion import Mode, convert
from repro.core.design import FlatTreeDesign
from repro.core.flattree import FlatTree
from repro.topology.clos import fat_tree_params
from repro.topology.elements import Network, PlainSwitch
from repro.topology.fattree import build_fat_tree

# Solver-heavy property tests can exceed hypothesis' default deadline on
# slow CI machines; correctness, not latency, is what these tests check.
settings.register_profile("repro", deadline=None, max_examples=25)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def fat8() -> Network:
    """Fat-tree(8): 80 switches, 128 servers."""
    return build_fat_tree(8)


@pytest.fixture(scope="session")
def params8():
    return fat_tree_params(8)


@pytest.fixture()
def design8() -> FlatTreeDesign:
    return FlatTreeDesign.for_fat_tree(8)


@pytest.fixture()
def flattree8(design8) -> FlatTree:
    return FlatTree(design8)


@pytest.fixture()
def global8(flattree8) -> Network:
    return convert(flattree8, Mode.GLOBAL_RANDOM)


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture()
def triangle() -> Network:
    """Three switches in a triangle, one server each."""
    net = Network("triangle")
    nodes = [PlainSwitch(i) for i in range(3)]
    for node in nodes:
        net.add_switch(node, 4)
    net.add_cable(nodes[0], nodes[1])
    net.add_cable(nodes[1], nodes[2])
    net.add_cable(nodes[0], nodes[2])
    for i, node in enumerate(nodes):
        net.add_server(i, node)
    return net


@pytest.fixture()
def path3() -> Network:
    """Three switches in a path a-b-c, servers on the endpoints."""
    net = Network("path3")
    a, b, c = PlainSwitch(0), PlainSwitch(1), PlainSwitch(2)
    for node in (a, b, c):
        net.add_switch(node, 4)
    net.add_cable(a, b)
    net.add_cable(b, c)
    net.add_server(0, a)
    net.add_server(1, c)
    return net
