"""Unit tests for the centralized controller."""

from __future__ import annotations

import pytest

from repro.core.controller import Controller
from repro.core.conversion import Mode
from repro.core.design import FlatTreeDesign
from repro.core.flattree import FlatTree
from repro.core.zones import proportional_layout
from repro.errors import RoutingError
from repro.topology.fattree import build_fat_tree


@pytest.fixture()
def controller():
    return Controller(FlatTree(FlatTreeDesign.for_fat_tree(8)))


class TestConversionPlans:
    def test_initial_state_is_clos(self, controller):
        fat = build_fat_tree(8)
        assert set(controller.network.fabric.edges()) == set(fat.fabric.edges())

    def test_noop_plan(self, controller):
        plan = controller.apply_mode(Mode.CLOS)
        assert plan.is_noop()
        assert plan.stages == []
        assert plan.summary().startswith("0 converters")

    def test_global_plan_counts(self, controller):
        plan = controller.apply_mode(Mode.GLOBAL_RANDOM)
        # All 96 converters (m + n = 3 per pair, 32 pairs) change.
        assert plan.converter_count == 96
        assert len(plan.links_removed) == len(plan.links_added)
        assert len(plan.servers_moved) == 96
        assert len(plan.stages) == 4

    def test_plan_matches_materialization(self, controller):
        before = controller.network
        plan = controller.apply_mode(Mode.LOCAL_RANDOM)
        after = controller.network
        for server, (old, new) in plan.servers_moved.items():
            assert before.server_switch(server) == old
            assert after.server_switch(server) == new
        for u, v in plan.links_added:
            assert after.fabric.has_edge(u, v)

    def test_partial_reconfiguration_smaller_plan(self, controller):
        controller.apply_mode(Mode.GLOBAL_RANDOM)
        plan = controller.apply_layout(
            proportional_layout(controller.flattree.params, 0.75)
        )
        # Only the local zone's Pods (and the new boundary) change.
        assert 0 < plan.converter_count < 96

    def test_history_recorded(self, controller):
        controller.apply_mode(Mode.GLOBAL_RANDOM)
        controller.apply_mode(Mode.CLOS)
        assert len(controller.history) == 2

    def test_network_cache_invalidation(self, controller):
        first = controller.network
        assert controller.network is first  # cached
        controller.apply_mode(Mode.GLOBAL_RANDOM)
        assert controller.network is not first


class TestRouting:
    def test_clos_uses_two_level(self, controller):
        paths = controller.routes(0, 127)
        assert len(paths) == 1
        assert paths[0].hops == 4  # cross-pod two-level route

    def test_same_switch_route(self, controller):
        paths = controller.routes(0, 1)
        assert paths[0].hops == 0

    def test_converted_uses_ksp(self, controller):
        controller.apply_mode(Mode.GLOBAL_RANDOM)
        paths = controller.routes(0, 127)
        assert len(paths) > 1
        hops = [p.hops for p in paths]
        assert hops == sorted(hops)

    def test_route_cache_reused(self, controller):
        controller.apply_mode(Mode.GLOBAL_RANDOM)
        first = controller.routes(0, 127)
        assert controller.routes(0, 127) is first

    def test_route_selection_deterministic(self, controller):
        controller.apply_mode(Mode.GLOBAL_RANDOM)
        a = controller.route(0, 127, flow_key="x")
        b = controller.route(0, 127, flow_key="x")
        assert a == b

    def test_sdn_compile_and_walk(self, controller):
        controller.apply_mode(Mode.GLOBAL_RANDOM)
        program = controller.compile_sdn([(0, 127), (10, 90)])
        assert program.rule_count() > 0
        program.validate_on(controller.network)
        net = controller.network
        path = program.forward(
            net.server_switch(0), net.server_switch(127), 0
        )
        assert path.hops >= 1

    def test_routes_valid_on_fabric(self, controller):
        controller.apply_mode(Mode.LOCAL_RANDOM)
        for path in controller.routes(0, 60):
            path.validate_on(controller.network)

    def test_hybrid_routing_works_across_zones(self, controller):
        controller.apply_layout(
            proportional_layout(controller.flattree.params, 0.5)
        )
        params = controller.flattree.params
        src = params.pod_servers(0)[0]      # global zone
        dst = params.pod_servers(7)[0]      # local zone
        path = controller.route(src, dst)
        assert path.hops >= 1
