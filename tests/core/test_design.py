"""Unit tests for flat-tree design points and the (m, n) grid."""

from __future__ import annotations

import pytest

from repro.core.design import FlatTreeDesign, mn_candidates, paper_round
from repro.core.wiring import WiringPattern
from repro.errors import WiringError
from repro.topology.clos import fat_tree_params


class TestPaperRound:
    def test_half_rounds_up(self):
        assert paper_round(0.5) == 1
        assert paper_round(1.5) == 2
        assert paper_round(2.5) == 3

    def test_plain_rounding(self):
        assert paper_round(0.49) == 0
        assert paper_round(1.2) == 1
        assert paper_round(1.8) == 2

    def test_integers_unchanged(self):
        assert paper_round(3.0) == 3


class TestForFatTree:
    @pytest.mark.parametrize(
        "k,m,n",
        [(4, 1, 1), (8, 1, 2), (16, 2, 4), (24, 3, 6), (32, 4, 8),
         (10, 1, 3), (20, 3, 5)],
    )
    def test_paper_defaults(self, k, m, n):
        d = FlatTreeDesign.for_fat_tree(k)
        assert (d.m, d.n) == (m, n)
        assert d.m + d.n <= k // 2

    def test_explicit_overrides(self):
        d = FlatTreeDesign.for_fat_tree(8, m=2, n=1,
                                        pattern=WiringPattern.PATTERN1)
        assert (d.m, d.n, d.pattern) == (2, 1, WiringPattern.PATTERN1)

    def test_ring_needs_two_pods(self):
        params = fat_tree_params(8)
        single = type(params)(pods=1, d=4, r=1, h=4, servers_per_edge=4)
        with pytest.raises(WiringError):
            FlatTreeDesign(params=single, m=1, n=1,
                           pattern=WiringPattern.PATTERN1, ring=True)
        # A line layout with one Pod is fine (no side bundles at all).
        FlatTreeDesign(params=single, m=1, n=1,
                       pattern=WiringPattern.PATTERN1, ring=False)

    def test_budget_validated(self):
        with pytest.raises(WiringError):
            FlatTreeDesign.for_fat_tree(8, m=3, n=2)

    def test_wiring_property(self):
        d = FlatTreeDesign.for_fat_tree(8)
        w = d.wiring
        assert w.m == d.m and w.n == d.n and w.pattern == d.pattern


class TestMnCandidates:
    def test_k8_grid(self):
        grid = mn_candidates(8)
        # Multiples of 1 with m >= 1, n >= 1, m + n <= 4.
        assert set(grid) == {(1, 1), (1, 2), (1, 3), (2, 1), (2, 2), (3, 1)}

    def test_budget_respected(self):
        for k in (4, 6, 8, 16, 32):
            for m, n in mn_candidates(k):
                assert m + n <= k // 2
                assert m >= 1 and n >= 1

    def test_no_duplicates(self):
        for k in (4, 6, 10, 12):
            grid = mn_candidates(k)
            assert len(grid) == len(set(grid))

    def test_k4_has_single_candidate(self):
        # k/8 = 0.5 -> every multiple rounds to small ints; only (1, 1)
        # fits m + n <= 2.
        assert mn_candidates(4) == [(1, 1)]
