"""Unit tests for hybrid-mode zone layouts."""

from __future__ import annotations

import pytest

from repro.core.conversion import Mode
from repro.core.zones import (
    Zone,
    ZoneLayout,
    proportional_layout,
    uniform_layout,
)
from repro.errors import ConfigurationError
from repro.topology.clos import fat_tree_params


class TestZone:
    def test_empty_zone_rejected(self):
        with pytest.raises(ConfigurationError):
            Zone("z", Mode.CLOS, ())

    def test_repeated_pods_rejected(self):
        with pytest.raises(ConfigurationError):
            Zone("z", Mode.CLOS, (1, 1))


class TestZoneLayout:
    def test_partition_enforced(self, params8):
        with pytest.raises(ConfigurationError):
            ZoneLayout(
                params=params8,
                zones=(Zone("a", Mode.CLOS, (0, 1)),),  # pods 2..7 missing
            )

    def test_overlap_rejected(self, params8):
        with pytest.raises(ConfigurationError):
            ZoneLayout(
                params=params8,
                zones=(
                    Zone("a", Mode.CLOS, tuple(range(5))),
                    Zone("b", Mode.CLOS, tuple(range(4, 8))),
                ),
            )

    def test_duplicate_names_rejected(self, params8):
        with pytest.raises(ConfigurationError):
            ZoneLayout(
                params=params8,
                zones=(
                    Zone("a", Mode.CLOS, (0, 1, 2, 3)),
                    Zone("a", Mode.CLOS, (4, 5, 6, 7)),
                ),
            )

    def test_pod_modes(self, params8):
        layout = proportional_layout(params8, 0.5)
        modes = layout.pod_modes()
        assert sum(1 for m in modes.values() if m is Mode.GLOBAL_RANDOM) == 4
        assert sum(1 for m in modes.values() if m is Mode.LOCAL_RANDOM) == 4

    def test_zone_servers(self, params8):
        layout = proportional_layout(params8, 0.25)
        servers = layout.zone_servers("global")
        assert len(servers) == 2 * params8.servers_per_pod
        assert servers[0] == 0

    def test_zone_lookup_error(self, params8):
        layout = proportional_layout(params8, 0.5)
        with pytest.raises(ConfigurationError):
            layout.zone("nope")

    def test_zone_pod_groups(self, params8):
        layout = proportional_layout(params8, 0.5)
        groups = layout.zone_pod_groups("local")
        assert len(groups) == 4
        assert list(groups[0]) == list(params8.pod_servers(4))


class TestProportionalLayout:
    def test_rounding(self, params8):
        layout = proportional_layout(params8, 0.3)  # 2.4 -> 2 pods
        assert len(layout.zone("global").pods) == 2

    def test_empty_zone_fractions_rejected(self, params8):
        with pytest.raises(ConfigurationError):
            proportional_layout(params8, 0.01)
        with pytest.raises(ConfigurationError):
            proportional_layout(params8, 0.99)

    def test_contiguous_slices(self, params8):
        layout = proportional_layout(params8, 0.5)
        assert layout.zone("global").pods == (0, 1, 2, 3)
        assert layout.zone("local").pods == (4, 5, 6, 7)


class TestUniformLayout:
    def test_single_zone(self, params8):
        layout = uniform_layout(params8, Mode.GLOBAL_RANDOM)
        assert len(layout.zones) == 1
        assert set(layout.pod_modes().values()) == {Mode.GLOBAL_RANDOM}
