"""Unit tests for adaptive mode selection."""

from __future__ import annotations

import random

import pytest

from repro.core.adaptive import (
    AdaptiveController,
    WorkloadFeatures,
    classify_workload,
    recommend,
)
from repro.core.controller import Controller
from repro.core.conversion import Mode
from repro.core.design import FlatTreeDesign
from repro.core.flattree import FlatTree
from repro.errors import ConfigurationError
from repro.mcf.commodities import Commodity
from repro.topology.clos import fat_tree_params


@pytest.fixture()
def params():
    return fat_tree_params(8)


def broadcast_load(params, hotspot=0):
    others = [s for s in range(params.num_servers) if s != hotspot]
    return [Commodity(hotspot, s) for s in others]


def local_cluster_load(params):
    out = []
    for pod in range(params.pods):
        members = list(params.pod_servers(pod))[:10]
        out.extend(
            Commodity(a, b) for a in members for b in members if a != b
        )
    return out


class TestClassify:
    def test_broadcast_is_hotspot_heavy(self, params):
        features = classify_workload(params, broadcast_load(params))
        assert features.hotspot_fraction == pytest.approx(1.0)
        assert features.cross_pod_fraction > 0.8

    def test_local_clusters_are_pod_local(self, params):
        features = classify_workload(params, local_cluster_load(params))
        assert features.local_cluster_fraction == pytest.approx(1.0)
        assert features.hotspot_fraction < 0.25

    def test_empty_workload(self, params):
        features = classify_workload(params, [])
        assert features.total_demand == 0.0

    def test_feature_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadFeatures(1.0, 1.5, 0.0, 0.0)


class TestRecommend:
    def test_hotspot_gets_global(self, params):
        features = classify_workload(params, broadcast_load(params))
        rec = recommend(params, features)
        assert all(
            z.mode is Mode.GLOBAL_RANDOM for z in rec.layout.zones
        )
        assert "hot spot" in rec.reason

    def test_local_clusters_get_local(self, params):
        features = classify_workload(params, local_cluster_load(params))
        rec = recommend(params, features)
        assert all(z.mode is Mode.LOCAL_RANDOM for z in rec.layout.zones)

    def test_thin_demand_stays_clos(self, params):
        rec = recommend(params, WorkloadFeatures(0.0, 0.0, 0.0, 0.0))
        assert all(z.mode is Mode.CLOS for z in rec.layout.zones)
        assert "churn" in rec.reason

    def test_mixed_load_gets_hybrid(self, params):
        heavy_broadcast = [
            Commodity(c.src, c.dst, demand=2.5)
            for c in broadcast_load(params)
        ]
        mixed = heavy_broadcast + local_cluster_load(params)
        features = classify_workload(params, mixed)
        assert features.hotspot_fraction >= 0.25
        assert features.local_cluster_fraction >= 0.6
        rec = recommend(params, features)
        modes = {z.mode for z in rec.layout.zones}
        assert modes == {Mode.GLOBAL_RANDOM, Mode.LOCAL_RANDOM}

    def test_diffuse_cross_pod_gets_global(self, params):
        rng = random.Random(0)
        servers = list(range(params.num_servers))
        diffuse = []
        while len(diffuse) < 300:
            a, b = rng.sample(servers, 2)
            if params.server_pod(a) != params.server_pod(b):
                diffuse.append(Commodity(a, b))
        rec = recommend(params, classify_workload(params, diffuse))
        assert all(z.mode is Mode.GLOBAL_RANDOM for z in rec.layout.zones)


class TestAdaptiveController:
    def test_closed_loop_conversion(self, params):
        controller = Controller(FlatTree(FlatTreeDesign.for_fat_tree(8)))
        adaptive = AdaptiveController(controller)
        rec, plan = adaptive.observe_and_convert(broadcast_load(params))
        assert not plan.is_noop()
        assert adaptive.last_recommendation is rec
        # Converged: re-observing the same workload is a no-op.
        _rec2, plan2 = adaptive.observe_and_convert(broadcast_load(params))
        assert plan2.is_noop()

    def test_workload_shift_triggers_reconversion(self, params):
        controller = Controller(FlatTree(FlatTreeDesign.for_fat_tree(8)))
        adaptive = AdaptiveController(controller)
        adaptive.observe_and_convert(broadcast_load(params))
        _rec, plan = adaptive.observe_and_convert(local_cluster_load(params))
        assert not plan.is_noop()
