"""Unit tests for the two-stage flat-tree composition."""

from __future__ import annotations

import pytest

from repro.core.conversion import Mode
from repro.core.design import FlatTreeDesign
from repro.core.multistage import (
    TwoStageDesign,
    TwoStageFlatTree,
    UpperCore,
    UpperEdge,
    build_two_stage_flat_tree,
)
from repro.errors import ConfigurationError
from repro.topology.fattree import build_fat_tree
from repro.topology.stats import (
    average_server_path_length,
    is_connected,
    server_counts_by_kind,
    switch_distances,
)
from repro.topology.validate import assert_valid


class TestDesignValidation:
    def test_symmetric_builds(self):
        design = TwoStageDesign.symmetric(8, 4)
        assert design.lower.params.num_cores == 16
        assert design.upper.params.pods * design.upper.params.d == 16
        assert design.upper.params.servers_per_edge == 8

    def test_core_count_mismatch_rejected(self):
        lower = FlatTreeDesign.for_fat_tree(8)  # 16 cores
        upper = FlatTreeDesign.for_fat_tree(4)  # 4 pods x 2 = 8 edges
        with pytest.raises(ConfigurationError):
            TwoStageDesign(lower=lower, upper=upper)

    def test_indivisible_pods_rejected(self):
        with pytest.raises(ConfigurationError):
            TwoStageDesign.symmetric(8, 3)  # 16 cores % 3 != 0


class TestMaterialization:
    @pytest.mark.parametrize("modes", [
        (Mode.CLOS, Mode.CLOS),
        (Mode.GLOBAL_RANDOM, Mode.GLOBAL_RANDOM),
        (Mode.GLOBAL_RANDOM, Mode.CLOS),
        (Mode.CLOS, Mode.GLOBAL_RANDOM),
        (Mode.LOCAL_RANDOM, Mode.LOCAL_RANDOM),
    ])
    def test_valid_connected_all_mode_pairs(self, modes):
        net = build_two_stage_flat_tree(4, 2, *modes)
        assert_valid(net)
        assert is_connected(net)
        assert net.num_servers == 16

    def test_clos_clos_matches_fat_tree_distances(self):
        """With both layers default, lower-layer server distances are
        exactly the single-layer fat-tree's (the upper hierarchy exists
        but shortest paths never need it)."""
        two = build_two_stage_flat_tree(4, 2, Mode.CLOS, Mode.CLOS)
        flat = build_fat_tree(4)
        assert average_server_path_length(two) == pytest.approx(
            average_server_path_length(flat)
        )

    def test_conversion_shortens_paths(self):
        clos = build_two_stage_flat_tree(8, 4, Mode.CLOS, Mode.CLOS)
        conv = build_two_stage_flat_tree(
            8, 4, Mode.GLOBAL_RANDOM, Mode.GLOBAL_RANDOM
        )
        assert average_server_path_length(conv) < average_server_path_length(
            clos
        )

    def test_double_relocation_reaches_top_cores(self):
        """Lower blade-B servers relocate to upper edges; the upper
        layer's converters push some of those onward to the top cores —
        the sketch's 'intermediate Pods take relocated servers'."""
        net = build_two_stage_flat_tree(
            8, 4, Mode.GLOBAL_RANDOM, Mode.GLOBAL_RANDOM
        )
        by_kind = server_counts_by_kind(net)
        assert by_kind.get("u-core", 0) > 0
        assert by_kind.get("u-edge", 0) > 0

    def test_lower_core_namespace_gone(self):
        net = build_two_stage_flat_tree(4, 2, Mode.CLOS, Mode.CLOS)
        kinds = {s.kind for s in net.switches()}
        assert "core" not in kinds
        assert {"u-edge", "u-agg", "u-core"} <= kinds

    def test_equipment_constant_across_modes(self):
        from repro.topology.elements import equipment_signature

        nets = [
            build_two_stage_flat_tree(4, 2, lo, up)
            for lo, up in (
                (Mode.CLOS, Mode.CLOS),
                (Mode.GLOBAL_RANDOM, Mode.GLOBAL_RANDOM),
                (Mode.LOCAL_RANDOM, Mode.CLOS),
            )
        ]
        signatures = {equipment_signature(n) for n in nets}
        assert len(signatures) == 1


class TestSlots:
    def test_slot_ids_dense(self):
        plant = TwoStageFlatTree(TwoStageDesign.symmetric(4, 2))
        lo = plant.design.lower.params
        ids = {
            plant.slot_id(c, p)
            for c in range(lo.num_cores)
            for p in range(lo.pods)
        }
        assert ids == set(range(lo.num_cores * lo.pods))

    def test_pod_server_groups_are_lower_layer(self):
        plant = TwoStageFlatTree(TwoStageDesign.symmetric(4, 2))
        groups = plant.pod_server_groups()
        assert len(groups) == 4
        assert plant.num_servers == 16
