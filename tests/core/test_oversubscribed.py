"""Flat-tree over oversubscribed Clos plants (r > 1).

The paper: "flat-tree targets at converting generic, especially
oversubscribed, Clos networks" (§3.1) even though its evaluation uses
fat-tree.  These tests run the full conversion machinery on 2:1 and 3:1
oversubscribed layouts, where one aggregation switch serves several
edge switches — the arithmetic the ``r`` parameter exists for.
"""

from __future__ import annotations

import pytest

from repro.core.conversion import Mode, convert
from repro.core.design import FlatTreeDesign
from repro.core.flattree import FlatTree
from repro.core.wiring import WiringPattern, profiled_pattern
from repro.errors import WiringError
from repro.topology.clos import ClosParams, build_clos
from repro.topology.stats import (
    average_server_path_length,
    is_connected,
    server_counts_by_kind,
)
from repro.topology.validate import assert_same_equipment, assert_valid


def oversubscribed_design(r=2, m=1, n=1):
    params = ClosParams(pods=6, d=4, r=r, h=4, servers_per_edge=4)
    return FlatTreeDesign(
        params=params,
        m=m,
        n=n,
        pattern=profiled_pattern(params, m),
        ring=True,
    )


class TestOversubscribedPlant:
    def test_plant_builds(self):
        ft = FlatTree(oversubscribed_design())
        params = ft.params
        assert len(ft.converters) == params.pods * params.d * 2

    def test_converters_share_aggs(self):
        """With r = 2, edge 0 and edge 1 pair with the same agg."""
        ft = FlatTree(oversubscribed_design())
        by_edge = {}
        for conv in ft.converters.values():
            by_edge.setdefault(conv.cid.edge, set()).add(conv.agg)
        assert by_edge[0] == by_edge[1]
        assert by_edge[2] == by_edge[3]
        assert by_edge[0] != by_edge[2]

    @pytest.mark.parametrize(
        "mode", [Mode.CLOS, Mode.GLOBAL_RANDOM, Mode.LOCAL_RANDOM]
    )
    def test_all_modes_materialize(self, mode):
        ft = FlatTree(oversubscribed_design())
        net = convert(ft, mode)
        assert_valid(net)
        assert is_connected(net)

    def test_clos_mode_matches_clos_builder(self):
        design = oversubscribed_design()
        clos = convert(FlatTree(design), Mode.CLOS)
        reference = build_clos(design.params)
        assert set(clos.fabric.edges()) == set(reference.fabric.edges())
        assert_same_equipment(clos, reference)

    def test_conversion_helps_oversubscribed_apl(self):
        """The paper's motivation: conversion pays *more* when the Clos
        is oversubscribed (fewer uplinks to share)."""
        design = oversubscribed_design()
        clos = convert(FlatTree(design), Mode.CLOS)
        glob = convert(FlatTree(design), Mode.GLOBAL_RANDOM)
        assert average_server_path_length(glob) < average_server_path_length(
            clos
        )

    def test_global_mode_server_relocation(self):
        design = oversubscribed_design()
        net = convert(FlatTree(design), Mode.GLOBAL_RANDOM)
        by_kind = server_counts_by_kind(net)
        pairs = design.params.pods * design.params.d
        assert by_kind["core"] == pairs * design.m
        assert by_kind["agg"] == pairs * design.n

    def test_r3_layout(self):
        params = ClosParams(pods=4, d=3, r=3, h=3, servers_per_edge=3)
        design = FlatTreeDesign(
            params=params, m=0, n=1,
            pattern=WiringPattern.PATTERN1, ring=True,
        )
        net = convert(FlatTree(design), Mode.GLOBAL_RANDOM)
        assert_valid(net)
        assert is_connected(net)

    def test_budget_violation_rejected(self):
        with pytest.raises(WiringError):
            oversubscribed_design(m=2, n=1)  # m + n > h/r = 2


class TestOversubscribedThroughput:
    def test_conversion_raises_hotspot_capacity(self):
        """End to end on the oversubscribed plant: global mode lifts the
        broadcast hot-spot throughput above Clos mode's."""
        from repro.experiments.common import throughput_of
        from repro.mcf.commodities import Commodity

        design = oversubscribed_design()
        clos = convert(FlatTree(design), Mode.CLOS)
        glob = convert(FlatTree(design), Mode.GLOBAL_RANDOM)
        servers = design.params.num_servers
        workload = [Commodity(0, s) for s in range(1, servers)]
        assert throughput_of(glob, workload) > throughput_of(clos, workload)
