"""Unit tests for controller-state serialization."""

from __future__ import annotations

import json

import pytest

from repro.core.conversion import Mode, mode_configs
from repro.core.design import FlatTreeDesign
from repro.core.flattree import FlatTree
from repro.core.state import (
    configs_from_dict,
    configs_to_dict,
    design_from_dict,
    design_to_dict,
    load_state,
    save_state,
)
from repro.core.wiring import WiringPattern
from repro.errors import ConfigurationError


class TestDesignRoundTrip:
    def test_round_trip_exact(self):
        design = FlatTreeDesign.for_fat_tree(8, ring=False)
        restored = design_from_dict(design_to_dict(design))
        assert restored == design

    def test_json_serializable(self):
        design = FlatTreeDesign.for_fat_tree(6)
        text = json.dumps(design_to_dict(design))
        assert design_from_dict(json.loads(text)) == design

    def test_bad_version_rejected(self):
        data = design_to_dict(FlatTreeDesign.for_fat_tree(8))
        data["version"] = 99
        with pytest.raises(ConfigurationError):
            design_from_dict(data)

    def test_malformed_rejected(self):
        data = design_to_dict(FlatTreeDesign.for_fat_tree(8))
        del data["params"]
        with pytest.raises(ConfigurationError):
            design_from_dict(data)

    def test_invalid_values_rejected(self):
        data = design_to_dict(FlatTreeDesign.for_fat_tree(8))
        data["m"] = 99  # violates the converter budget
        with pytest.raises(Exception):
            design_from_dict(data)


class TestConfigRoundTrip:
    def test_round_trip_preserves_assignment(self, flattree8):
        flattree8.set_configs(mode_configs(flattree8, Mode.GLOBAL_RANDOM))
        snapshot = configs_to_dict(flattree8)
        other = FlatTree(flattree8.design)
        configs_from_dict(other, snapshot)
        assert other.configs() == flattree8.configs()

    def test_missing_converters_rejected(self, flattree8):
        snapshot = configs_to_dict(flattree8)
        key = next(iter(snapshot["configs"]))
        del snapshot["configs"][key]
        with pytest.raises(ConfigurationError, match="misses"):
            configs_from_dict(FlatTree(flattree8.design), snapshot)

    def test_bad_config_value_rejected(self, flattree8):
        snapshot = configs_to_dict(flattree8)
        key = next(iter(snapshot["configs"]))
        snapshot["configs"][key] = "upside-down"
        with pytest.raises(ConfigurationError):
            configs_from_dict(FlatTree(flattree8.design), snapshot)


class TestFileRoundTrip:
    def test_save_and_load(self, flattree8, tmp_path):
        flattree8.set_configs(mode_configs(flattree8, Mode.LOCAL_RANDOM))
        path = tmp_path / "state.json"
        save_state(flattree8, str(path))
        restored = load_state(str(path))
        assert restored.design == flattree8.design
        assert restored.configs() == flattree8.configs()
        # The restored plant materializes the identical topology.
        a = flattree8.materialize()
        b = restored.materialize()
        assert set(a.fabric.edges()) == set(b.fabric.edges())

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text('{"design": {}}')
        with pytest.raises(ConfigurationError):
            load_state(str(path))
