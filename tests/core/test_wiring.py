"""Unit and property tests for Pod-core wiring patterns."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.wiring import (
    PodCoreWiring,
    Slot,
    WiringPattern,
    clos_wiring,
    coverage_is_uniform,
    pattern_is_degenerate,
    pattern_step,
    profiled_pattern,
    recommended_pattern,
    recommended_pattern_for_k,
    rotation_diversity,
    safe_pattern,
)
from repro.errors import WiringError
from repro.topology.clos import ClosParams, fat_tree_params


def wiring(k=8, m=1, n=2, pattern=WiringPattern.PATTERN1):
    return PodCoreWiring(fat_tree_params(k), m, n, pattern)


class TestValidation:
    def test_mn_budget_group_size(self):
        with pytest.raises(WiringError):
            wiring(k=8, m=3, n=2)  # 5 > h/r = 4

    def test_mn_budget_servers(self):
        params = ClosParams(pods=2, d=2, r=1, h=4, servers_per_edge=2)
        with pytest.raises(WiringError):
            PodCoreWiring(params, 2, 1, WiringPattern.PATTERN1)

    def test_negative_rejected(self):
        with pytest.raises(WiringError):
            wiring(m=-1)

    def test_position_out_of_range(self):
        w = wiring()
        with pytest.raises(WiringError):
            w.core_for(0, 0, 4)


class TestRotation:
    def test_pattern1_step_is_m(self):
        w = wiring(k=8, m=1, pattern=WiringPattern.PATTERN1)
        assert [w.rotation_offset(p) for p in range(5)] == [0, 1, 2, 3, 0]

    def test_pattern2_step_is_m_plus_1(self):
        w = wiring(k=8, m=1, pattern=WiringPattern.PATTERN2)
        assert [w.rotation_offset(p) for p in range(5)] == [0, 2, 0, 2, 0]

    def test_pattern_step_helper(self):
        assert pattern_step(3, WiringPattern.PATTERN1) == 3
        assert pattern_step(3, WiringPattern.PATTERN2) == 4


class TestSlots:
    def test_slot_kinds_blocks(self):
        w = wiring(k=8, m=1, n=2)
        kinds = [w.slot_kind(t) for t in range(4)]
        assert kinds == [Slot.BLADE_B, Slot.BLADE_A, Slot.BLADE_A, Slot.AGG]

    def test_slots_rows_within_kind(self):
        w = wiring(k=8, m=1, n=2)
        rows = {(kind, row) for kind, row, _core in w.slots(0, 0)}
        assert (Slot.BLADE_B, 0) in rows
        assert (Slot.BLADE_A, 0) in rows
        assert (Slot.BLADE_A, 1) in rows
        assert (Slot.AGG, 0) in rows

    def test_cores_stay_in_group(self):
        w = wiring(k=8, m=1, n=2)
        for pod in range(8):
            for edge in range(4):
                group = set(w.params.core_group(edge))
                for _kind, _row, core in w.slots(pod, edge):
                    assert core.index in group

    def test_clos_wiring_all_agg(self):
        w = clos_wiring(fat_tree_params(8))
        kinds = {kind for kind, _r, _c in w.slots(0, 0)}
        assert kinds == {Slot.AGG}


@st.composite
def wiring_cases(draw):
    k = draw(st.sampled_from([4, 6, 8, 10, 12, 16]))
    params = fat_tree_params(k)
    gs = params.group_size
    m = draw(st.integers(min_value=0, max_value=min(gs, params.servers_per_edge)))
    n = draw(st.integers(min_value=0, max_value=min(gs, params.servers_per_edge) - m))
    pattern = draw(st.sampled_from(list(WiringPattern)))
    return params, m, n, pattern


@given(wiring_cases())
def test_property_each_pod_edge_covers_group_once(case):
    """Every (pod, edge) hits each core of its group exactly once.

    This is what makes Clos mode exactly the original fat-tree: the
    rotated positions form a bijection onto the group.
    """
    params, m, n, pattern = case
    w = PodCoreWiring(params, m, n, pattern)
    for pod in (0, params.pods - 1):
        for edge in (0, params.d - 1):
            cores = [c.index for _k, _r, c in w.slots(pod, edge)]
            assert sorted(cores) == list(params.core_group(edge))


@given(wiring_cases())
def test_property_pattern1_uniform_coverage(case):
    """Pattern 1's blade B blocks cover group positions uniformly."""
    params, m, n, _pattern = case
    assert coverage_is_uniform(params, m, WiringPattern.PATTERN1)


class TestPatternSelection:
    def test_paper_rule(self):
        assert recommended_pattern_for_k(8) is WiringPattern.PATTERN2
        assert recommended_pattern_for_k(6) is WiringPattern.PATTERN1
        assert recommended_pattern_for_k(12) is WiringPattern.PATTERN2

    def test_generic_rule(self):
        params = fat_tree_params(8)  # h/r = 4
        assert recommended_pattern(params, 2) is WiringPattern.PATTERN2
        assert recommended_pattern(params, 3) is WiringPattern.PATTERN1
        assert recommended_pattern(params, 0) is WiringPattern.PATTERN1

    def test_degeneracy_detection(self):
        params = fat_tree_params(4)  # h/r = 2
        assert pattern_is_degenerate(params, 1, WiringPattern.PATTERN2)
        assert not pattern_is_degenerate(params, 1, WiringPattern.PATTERN1)
        assert not pattern_is_degenerate(params, 0, WiringPattern.PATTERN2)

    def test_safe_pattern_falls_back(self):
        params = fat_tree_params(4)
        assert (
            safe_pattern(params, 1, WiringPattern.PATTERN2)
            is WiringPattern.PATTERN1
        )

    def test_safe_pattern_keeps_good_choice(self):
        params = fat_tree_params(8)
        assert (
            safe_pattern(params, 1, WiringPattern.PATTERN2)
            is WiringPattern.PATTERN2
        )

    def test_profiled_pattern_prefers_uniform(self):
        # k=8, m=1: pattern 2 is non-uniform (gcd(2,4)=2 > m) -> pattern 1.
        assert profiled_pattern(fat_tree_params(8), 1) is WiringPattern.PATTERN1
        # k=16, m=2: pattern 2 uniform with diversity 8 vs pattern 1's 4.
        assert profiled_pattern(fat_tree_params(16), 2) is WiringPattern.PATTERN2

    def test_rotation_diversity(self):
        params = fat_tree_params(16)  # h/r = 8
        assert rotation_diversity(params, 2, WiringPattern.PATTERN1) == 4
        assert rotation_diversity(params, 2, WiringPattern.PATTERN2) == 8

    def test_no_usable_pattern_raises(self):
        params = ClosParams(pods=2, d=2, r=1, h=1, servers_per_edge=2)
        with pytest.raises(WiringError):
            profiled_pattern(params, 1)
