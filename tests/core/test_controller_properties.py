"""Property tests for controller conversion invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.controller import Controller
from repro.core.conversion import Mode
from repro.core.design import FlatTreeDesign
from repro.core.flattree import FlatTree
from repro.core.zones import proportional_layout, uniform_layout


@pytest.fixture()
def controller():
    return Controller(FlatTree(FlatTreeDesign.for_fat_tree(6)))


MODES = st.sampled_from(list(Mode))


@settings(max_examples=15)
@given(st.lists(MODES, min_size=1, max_size=4))
def test_property_conversion_sequences_stay_consistent(sequence):
    """Any mode sequence: plans are balanced and state stays coherent.

    Invariants per step: links removed == links added (conversion
    rewires, never gains or loses cables); converter count == servers
    moved (every re-programmed converter re-homes exactly its server);
    the cached network always matches a fresh materialization.
    """
    controller = Controller(FlatTree(FlatTreeDesign.for_fat_tree(6)))
    for mode in sequence:
        plan = controller.apply_mode(mode)
        assert len(plan.links_removed) == len(plan.links_added)
        assert plan.converter_count == len(plan.servers_moved)
        fresh = controller.flattree.materialize()
        assert set(controller.network.fabric.edges()) == set(
            fresh.fabric.edges()
        )


@settings(max_examples=15)
@given(MODES, MODES)
def test_property_round_trip_restores_topology(first, second):
    """A -> B -> A always lands back on A's exact topology."""
    controller = Controller(FlatTree(FlatTreeDesign.for_fat_tree(6)))
    controller.apply_mode(first)
    reference = set(controller.network.fabric.edges())
    servers = {
        s: controller.network.server_switch(s)
        for s in controller.network.servers()
    }
    controller.apply_mode(second)
    controller.apply_mode(first)
    assert set(controller.network.fabric.edges()) == reference
    assert {
        s: controller.network.server_switch(s)
        for s in controller.network.servers()
    } == servers


@settings(max_examples=10)
@given(st.integers(min_value=1, max_value=4))
def test_property_hybrid_fraction_monotone_churn(global_pods):
    """Moving one Pod between zones re-programs only that Pod's border.

    Converting from an f-Pod global zone to an (f+1)-Pod global zone
    must touch at most the converters of the moved Pod and its two
    neighbors (boundary bundles) — locality of reconfiguration.
    """
    controller = Controller(FlatTree(FlatTreeDesign.for_fat_tree(6)))
    params = controller.flattree.params
    controller.apply_layout(
        proportional_layout(params, global_pods / params.pods)
    )
    plan = controller.apply_layout(
        proportional_layout(params, (global_pods + 1) / params.pods)
    )
    affected_pods = {cid.pod for cid in plan.config_changes}
    moved = global_pods  # the Pod index that switched zones
    allowed = {moved, (moved - 1) % params.pods, (moved + 1) % params.pods}
    assert affected_pods <= allowed


def test_uniform_layout_equals_mode(controller):
    a = controller.apply_layout(
        uniform_layout(controller.flattree.params, Mode.GLOBAL_RANDOM)
    )
    net_a = set(controller.network.fabric.edges())
    controller.apply_mode(Mode.CLOS)
    controller.apply_mode(Mode.GLOBAL_RANDOM)
    assert set(controller.network.fabric.edges()) == net_a
