"""Unit tests for the (m, n) profiling scheme."""

from __future__ import annotations

import pytest

from repro.core.design import FlatTreeDesign
from repro.core.profiling import profile_mn, profiled_design
from repro.errors import WiringError
from repro.topology.clos import fat_tree_params


class TestProfileMn:
    def test_best_is_minimum(self):
        result = profile_mn(fat_tree_params(8))
        best_apl = result.best.average_path_length
        assert all(p.average_path_length >= best_apl for p in result.points)

    def test_grid_skips_infeasible(self):
        # Explicit grid with an infeasible point (m + n > k/2 at k=8).
        result = profile_mn(fat_tree_params(8), candidates=[(1, 1), (3, 3)])
        assert [(p.m, p.n) for p in result.points] == [(1, 1)]

    def test_skipped_candidates_recorded_with_reason(self):
        result = profile_mn(fat_tree_params(8), candidates=[(1, 1), (3, 3)])
        assert [(s.m, s.n) for s in result.skipped] == [(3, 3)]
        assert result.skipped[0].reason  # the WiringError message
        # Every grid point is accounted for: profiled or skipped.
        assert len(result.points) + len(result.skipped) == 2

    def test_feasible_grid_has_no_skips(self):
        result = profile_mn(fat_tree_params(8), candidates=[(1, 1), (1, 2)])
        assert result.skipped == ()

    def test_skips_emit_telemetry_events(self):
        from repro import obs
        from repro.obs.sinks import MemorySink

        obs.disable()
        obs.registry.reset()
        sink = MemorySink()
        obs.enable(sink)
        try:
            profile_mn(fat_tree_params(8), candidates=[(1, 1), (3, 3)])
            skips = [e for e in sink.events
                     if e["name"] == "core.profiling.skipped_candidate"]
            assert len(skips) == 1
            assert skips[0]["m"] == 3 and skips[0]["n"] == 3
            assert skips[0]["reason"]
            counter = obs.registry.counter("core.profiling.skipped")
            assert counter.value == 1
        finally:
            obs.disable()
            obs.registry.reset()

    def test_all_infeasible_raises(self):
        with pytest.raises(WiringError):
            profile_mn(fat_tree_params(8), candidates=[(4, 4)])

    def test_rows_mark_best(self):
        result = profile_mn(fat_tree_params(8), candidates=[(1, 1), (1, 2)])
        rows = result.as_rows()
        assert sum(1 for r in rows if r["best"]) == 1
        assert {"m", "n", "pattern", "apl", "best"} <= set(rows[0])

    def test_custom_candidates_respected(self):
        result = profile_mn(fat_tree_params(8), candidates=[(2, 2)])
        assert (result.best.m, result.best.n) == (2, 2)


class TestProfiledDesign:
    def test_matches_profile_best(self):
        params = fat_tree_params(8)
        result = profile_mn(params)
        design = profiled_design(params)
        assert (design.m, design.n) == (result.best.m, result.best.n)
        assert design.pattern == result.best.pattern

    def test_profiled_design_near_paper_choice(self):
        """The profiled APL should not beat the paper's (k/8, 2k/8) by
        much — they are the same optimization, modulo rotation details."""
        from repro.core.conversion import Mode, convert
        from repro.core.flattree import FlatTree
        from repro.topology.stats import average_server_path_length

        params = fat_tree_params(8)
        design = profiled_design(params)
        profiled_apl = average_server_path_length(
            convert(FlatTree(design), Mode.GLOBAL_RANDOM)
        )
        paper = FlatTreeDesign.for_fat_tree(8)
        paper_apl = average_server_path_length(
            convert(FlatTree(paper), Mode.GLOBAL_RANDOM)
        )
        assert profiled_apl <= paper_apl * 1.001
        assert paper_apl <= profiled_apl * 1.10
