"""Unit tests for elastic downscaling."""

from __future__ import annotations

import pytest

from repro.core.conversion import Mode, convert
from repro.core.design import FlatTreeDesign
from repro.core.flattree import FlatTree
from repro.core.scaling import DownscalePlan, apply_sleep, downscale_plan
from repro.errors import ConfigurationError
from repro.mcf.commodities import Commodity
from repro.topology.elements import CoreSwitch
from repro.topology.fattree import build_fat_tree


@pytest.fixture(scope="module")
def fat4():
    return build_fat_tree(4)


@pytest.fixture(scope="module")
def light_workload():
    # A couple of cross-pod pairs: far below full capacity.
    return [Commodity(0, 15), Commodity(4, 12)]


class TestApplySleep:
    def test_removes_all_cables(self, fat4):
        pruned = apply_sleep(fat4, [CoreSwitch(0)])
        assert pruned.degree(CoreSwitch(0)) == 0
        assert fat4.degree(CoreSwitch(0)) == 4  # original untouched

    def test_rejects_server_hosting_switch(self):
        net = convert(
            FlatTree(FlatTreeDesign.for_fat_tree(8)), Mode.GLOBAL_RANDOM
        )
        hosting = next(
            s for s in net.switches_of_kind("core") if net.server_count(s)
        )
        with pytest.raises(ConfigurationError):
            apply_sleep(net, [hosting])


class TestDownscalePlan:
    def test_sleeps_cores_under_light_load(self, fat4, light_workload):
        plan = downscale_plan(
            fat4, light_workload, min_throughput_fraction=0.5
        )
        assert plan.cores_slept >= 1
        assert plan.achieved_throughput >= 0.5 * plan.baseline_throughput
        assert "sleeping" in plan.summary()

    def test_floor_one_keeps_everything_or_free_cores(self, fat4, light_workload):
        plan = downscale_plan(
            fat4, light_workload, min_throughput_fraction=1.0, max_sleeping=2
        )
        # Any sleeping core must have been throughput-free.
        assert plan.achieved_throughput >= plan.baseline_throughput - 1e-9

    def test_max_sleeping_respected(self, fat4, light_workload):
        plan = downscale_plan(
            fat4, light_workload, min_throughput_fraction=0.1, max_sleeping=1
        )
        assert plan.cores_slept <= 1

    def test_bad_floor_rejected(self, fat4, light_workload):
        with pytest.raises(ConfigurationError):
            downscale_plan(fat4, light_workload, min_throughput_fraction=0.0)

    def test_pruned_network_verifies(self, fat4, light_workload):
        from repro.experiments.common import throughput_of

        plan = downscale_plan(
            fat4, light_workload, min_throughput_fraction=0.5
        )
        pruned = apply_sleep(fat4, plan.sleeping)
        assert throughput_of(pruned, light_workload) == pytest.approx(
            plan.achieved_throughput
        )

    def test_summary_when_nothing_sleeps(self):
        plan = DownscalePlan(
            sleeping=(), baseline_throughput=1.0, achieved_throughput=1.0
        )
        assert "no core switch" in plan.summary()
