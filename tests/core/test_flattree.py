"""Unit and property tests for the FlatTree plant and materialization."""

from __future__ import annotations

import pytest

from repro.core.conversion import Mode, convert, mode_configs
from repro.core.converter import BLADE_A, BLADE_B, ConverterConfig, ConverterId
from repro.core.design import FlatTreeDesign
from repro.core.flattree import FlatTree
from repro.errors import ConfigurationError
from repro.topology.fattree import build_fat_tree
from repro.topology.stats import is_connected, server_counts_by_kind
from repro.topology.validate import assert_same_equipment, assert_valid


class TestPlant:
    def test_converter_inventory(self, flattree8, design8):
        params = design8.params
        expected = params.pods * params.d * (design8.m + design8.n)
        assert len(flattree8.converters) == expected
        assert len(flattree8.six_port_ids()) == params.pods * params.d * design8.m
        assert len(flattree8.four_port_ids()) == params.pods * params.d * design8.n

    def test_every_server_owned_once(self, flattree8, design8):
        owned = [c.server for c in flattree8.converters.values()]
        direct = [s for s, _sw in flattree8._direct_attaches]
        together = owned + direct
        assert sorted(together) == list(range(design8.params.num_servers))

    def test_pairs_are_mutual(self, flattree8):
        for left, right in flattree8.pairs:
            assert flattree8.converters[left].peer == right
            assert flattree8.converters[right].peer == left

    def test_pod_converters(self, flattree8, design8):
        per_pod = design8.params.d * (design8.m + design8.n)
        for pod in range(design8.params.pods):
            assert len(flattree8.pod_converters(pod)) == per_pod

    def test_initial_configs_default(self, flattree8):
        assert all(
            c is ConverterConfig.DEFAULT for c in flattree8.configs().values()
        )

    def test_pod_server_groups(self, flattree8, design8):
        groups = flattree8.pod_server_groups()
        assert len(groups) == design8.params.pods
        assert groups[0][0] == 0
        assert len(groups[0]) == design8.params.servers_per_pod


class TestClosEquivalence:
    @pytest.mark.parametrize("k", [4, 6, 8, 10, 12])
    def test_clos_mode_is_exactly_fat_tree(self, k):
        ft = FlatTree(FlatTreeDesign.for_fat_tree(k))
        clos = convert(ft, Mode.CLOS)
        fat = build_fat_tree(k)
        assert set(clos.fabric.edges()) == set(fat.fabric.edges())
        assert {s: clos.server_switch(s) for s in clos.servers()} == {
            s: fat.server_switch(s) for s in fat.servers()
        }


class TestMaterializations:
    @pytest.mark.parametrize("k", [4, 6, 8, 10, 14])
    @pytest.mark.parametrize(
        "mode", [Mode.CLOS, Mode.GLOBAL_RANDOM, Mode.LOCAL_RANDOM]
    )
    def test_all_modes_valid_same_equipment(self, k, mode):
        ft = FlatTree(FlatTreeDesign.for_fat_tree(k))
        net = convert(ft, mode)
        assert_valid(net)
        assert is_connected(net)
        assert_same_equipment(net, build_fat_tree(k))

    def test_global_mode_server_distribution(self, global8, design8):
        """m servers/pair to cores, n to aggs, the rest stay at edges.

        k=8 even d means no unpaired middle column, so all m land on
        cores.
        """
        params = design8.params
        by_kind = server_counts_by_kind(global8)
        pairs = params.pods * params.d
        assert by_kind["core"] == pairs * design8.m
        assert by_kind["agg"] == pairs * design8.n
        assert by_kind["edge"] == params.num_servers - pairs * (
            design8.m + design8.n
        )

    def test_local_mode_half_edge_half_agg(self):
        """Figure 2d: local mode relocates only blade A servers to aggs."""
        design = FlatTreeDesign.for_fat_tree(8)
        net = convert(FlatTree(design), Mode.LOCAL_RANDOM)
        by_kind = server_counts_by_kind(net)
        pairs = design.params.pods * design.params.d
        assert by_kind["agg"] == pairs * design.n
        assert "core" not in by_kind

    def test_odd_d_middle_column_falls_back(self):
        """k=6 has d=3: the middle 6-port converters cannot pair."""
        design = FlatTreeDesign.for_fat_tree(6)
        ft = FlatTree(design)
        convert(ft, Mode.GLOBAL_RANDOM)
        middles = [
            cid for cid in ft.six_port_ids()
            if ft.converters[cid].peer is None
        ]
        assert middles
        assert all(cid.edge == 1 for cid in middles)
        for cid in middles:
            assert ft.converters[cid].config is ConverterConfig.LOCAL

    def test_line_layout_materializes(self):
        design = FlatTreeDesign.for_fat_tree(8, ring=False)
        net = convert(FlatTree(design), Mode.GLOBAL_RANDOM)
        assert_valid(net)


class TestSetConfigs:
    def test_unknown_converter_rejected(self, flattree8):
        ghost = ConverterId(99, BLADE_A, 0, 0)
        with pytest.raises(ConfigurationError):
            flattree8.set_configs({ghost: ConverterConfig.LOCAL})

    def test_partial_assignment_allowed(self, flattree8):
        cid = flattree8.four_port_ids()[0]
        flattree8.set_configs({cid: ConverterConfig.LOCAL})
        assert flattree8.converters[cid].config is ConverterConfig.LOCAL

    def test_pair_consistency_enforced(self, flattree8):
        left, _right = flattree8.pairs[0]
        with pytest.raises(ConfigurationError):
            flattree8.set_configs({left: ConverterConfig.SIDE})

    def test_failed_assignment_is_atomic(self, flattree8):
        """An invalid batch must not leave partial state behind."""
        before = flattree8.configs()
        good = flattree8.four_port_ids()[0]
        left, _right = flattree8.pairs[0]
        with pytest.raises(ConfigurationError):
            flattree8.set_configs({
                good: ConverterConfig.LOCAL,
                left: ConverterConfig.SIDE,  # inconsistent pair
            })
        assert flattree8.configs() == before

    def test_diff_configs(self, flattree8):
        target = mode_configs(flattree8, Mode.LOCAL_RANDOM)
        diff = flattree8.diff_configs(target)
        # Only blade A converters change (B stays default in local mode).
        assert set(diff) == set(flattree8.four_port_ids())
        for old, new in diff.values():
            assert old is ConverterConfig.DEFAULT
            assert new is ConverterConfig.LOCAL


class TestRepeatedConversion:
    def test_round_trip_restores_clos(self):
        k = 8
        ft = FlatTree(FlatTreeDesign.for_fat_tree(k))
        first = convert(ft, Mode.CLOS)
        convert(ft, Mode.GLOBAL_RANDOM)
        convert(ft, Mode.LOCAL_RANDOM)
        back = convert(ft, Mode.CLOS)
        assert set(first.fabric.edges()) == set(back.fabric.edges())

    def test_materialize_is_pure(self, flattree8):
        a = flattree8.materialize()
        b = flattree8.materialize()
        assert set(a.fabric.edges()) == set(b.fabric.edges())
        assert a is not b
