"""Unit tests for the conversion engine (modes and hybrid maps)."""

from __future__ import annotations

import pytest

from repro.core.conversion import Mode, convert, hybrid_configs, mode_configs
from repro.core.converter import BLADE_A, BLADE_B, ConverterConfig
from repro.core.design import FlatTreeDesign
from repro.core.flattree import FlatTree
from repro.errors import ConfigurationError
from repro.topology.validate import assert_valid


class TestModeConfigs:
    def test_clos_all_default(self, flattree8):
        configs = mode_configs(flattree8, Mode.CLOS)
        assert set(configs.values()) == {ConverterConfig.DEFAULT}

    def test_local_random_blades(self, flattree8):
        configs = mode_configs(flattree8, Mode.LOCAL_RANDOM)
        for cid, config in configs.items():
            expected = (
                ConverterConfig.LOCAL
                if cid.blade == BLADE_A
                else ConverterConfig.DEFAULT
            )
            assert config is expected

    def test_global_random_blades(self, flattree8):
        configs = mode_configs(flattree8, Mode.GLOBAL_RANDOM)
        for cid, config in configs.items():
            if cid.blade == BLADE_A:
                assert config is ConverterConfig.LOCAL
            else:
                expected = (
                    ConverterConfig.SIDE
                    if cid.row % 2 == 0
                    else ConverterConfig.CROSS
                )
                assert config is expected


class TestHybrid:
    def test_requires_complete_pod_map(self, flattree8):
        with pytest.raises(ConfigurationError, match="missing"):
            hybrid_configs(flattree8, {0: Mode.CLOS})

    def test_rejects_unknown_pods(self, flattree8):
        modes = {p: Mode.CLOS for p in range(9)}
        with pytest.raises(ConfigurationError):
            hybrid_configs(flattree8, modes)

    def test_boundary_six_port_falls_back_to_local(self, flattree8):
        """A global Pod adjacent to a non-global Pod loses its bundle."""
        modes = {p: Mode.LOCAL_RANDOM for p in range(8)}
        modes[3] = Mode.GLOBAL_RANDOM
        configs = hybrid_configs(flattree8, modes)
        for cid in flattree8.six_port_ids():
            if cid.pod == 3:
                # Both neighbors are local-random: no side/cross allowed.
                assert configs[cid] is ConverterConfig.LOCAL

    def test_interior_global_pods_keep_bundles(self, flattree8):
        modes = {p: Mode.GLOBAL_RANDOM for p in range(8)}
        modes[7] = Mode.LOCAL_RANDOM
        configs = hybrid_configs(flattree8, modes)
        paired = [
            cid for cid in flattree8.six_port_ids()
            if configs[cid] in (ConverterConfig.SIDE, ConverterConfig.CROSS)
        ]
        # Pods 1..5 are interior to the global zone (ring: 0 and 6 touch
        # the local Pod 7 on one side each).
        assert paired
        for cid in paired:
            peer = flattree8.converters[cid].peer
            assert modes[peer.pod] is Mode.GLOBAL_RANDOM

    def test_hybrid_materializes_valid(self, flattree8):
        modes = {p: (Mode.GLOBAL_RANDOM if p < 4 else Mode.LOCAL_RANDOM)
                 for p in range(8)}
        net = convert(flattree8, pod_modes=modes)
        assert_valid(net)

    def test_mixed_with_clos_zone(self, flattree8):
        modes = {0: Mode.CLOS, 1: Mode.CLOS}
        modes.update({p: Mode.GLOBAL_RANDOM for p in range(2, 5)})
        modes.update({p: Mode.LOCAL_RANDOM for p in range(5, 8)})
        net = convert(flattree8, pod_modes=modes)
        assert_valid(net)
        # Clos-zone Pods keep their Clos server placement.
        for server in flattree8.params.pod_servers(0):
            assert net.server_switch(server).kind == "edge"


class TestConvertDispatch:
    def test_exactly_one_argument(self, flattree8):
        with pytest.raises(ConfigurationError):
            convert(flattree8)
        with pytest.raises(ConfigurationError):
            convert(
                flattree8,
                mode=Mode.CLOS,
                pod_modes={p: Mode.CLOS for p in range(8)},
            )

    def test_names(self, flattree8):
        net = convert(flattree8, Mode.GLOBAL_RANDOM)
        assert "global-random" in net.name
        net = convert(flattree8, pod_modes={p: Mode.CLOS for p in range(8)})
        assert "hybrid" in net.name
        net = convert(flattree8, Mode.CLOS, name="custom")
        assert net.name == "custom"
