"""Unit tests for reconfiguration scheduling and disruption."""

from __future__ import annotations

import pytest

from repro.core.controller import Controller
from repro.core.conversion import Mode
from repro.core.design import FlatTreeDesign
from repro.core.flattree import FlatTree
from repro.core.reconfigure import (
    MACH_ZEHNDER,
    MEMS_OPTICAL,
    PACKET_CHIP,
    Schedule,
    Technology,
    audit,
    disruption,
    schedule,
)
from repro.errors import ConfigurationError
from repro.routing.base import Path
from repro.topology.elements import AggSwitch, CoreSwitch, EdgeSwitch
from repro.topology.stats import is_connected


@pytest.fixture()
def converted():
    """A controller plus the plan of a full Clos -> global conversion."""
    controller = Controller(FlatTree(FlatTreeDesign.for_fat_tree(8)))
    before = controller.network
    plan = controller.apply_mode(Mode.GLOBAL_RANDOM)
    return controller, before, plan


class TestTechnology:
    def test_profiles_exist(self):
        for tech in (MEMS_OPTICAL, MACH_ZEHNDER, PACKET_CHIP):
            assert tech.switch_delay >= 0
            assert tech.control_overhead >= 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            Technology("bad", switch_delay=-1, control_overhead=0)


class TestSchedule:
    def test_covers_every_converter_once(self, converted):
        _controller, before, plan = converted
        sched = schedule(plan, before)
        scheduled = [cid for batch in sched.batches for cid in batch]
        assert sorted(scheduled) == sorted(plan.config_changes)

    def test_batches_respect_cap(self, converted):
        _controller, before, plan = converted
        sched = schedule(plan, before, max_batch=10)
        assert all(len(batch) <= 10 for batch in sched.batches)
        assert sched.num_batches >= len(plan.config_changes) // 10

    def test_times_scale_with_batches(self, converted):
        _controller, before, plan = converted
        small = schedule(plan, before, max_batch=8)
        large = schedule(plan, before, max_batch=64)
        assert small.total_time > large.total_time
        assert small.blink_window == large.blink_window

    def test_technology_changes_times(self, converted):
        _controller, before, plan = converted
        mems = schedule(plan, before, technology=MEMS_OPTICAL)
        mzi = schedule(plan, before, technology=MACH_ZEHNDER)
        assert mzi.blink_window < mems.blink_window
        assert mzi.total_time < mems.total_time

    def test_noop_plan_empty_schedule(self, converted):
        controller, _before, _plan = converted
        noop = controller.apply_mode(Mode.GLOBAL_RANDOM)
        sched = schedule(noop, controller.network)
        assert sched.num_batches == 0
        assert sched.total_time == 0.0

    def test_batches_never_partition_network(self, converted):
        """Re-verify the schedule's own invariant independently."""
        _controller, before, plan = converted
        sched = schedule(plan, before, max_batch=16)
        from repro.core.reconfigure import _links_by_converter

        dark = _links_by_converter(plan)
        for batch in sched.batches:
            scratch = before.copy()
            for cid in batch:
                for u, v in dark.get(cid, []):
                    if scratch.capacity(u, v) > 0:
                        scratch.remove_cable(u, v)
            assert is_connected(scratch)

    def test_summary_readable(self, converted):
        _controller, before, plan = converted
        text = schedule(plan, before).summary()
        assert "batches" in text and "ms" in text

    def test_bad_batch_cap(self, converted):
        _controller, before, plan = converted
        with pytest.raises(ConfigurationError):
            schedule(plan, before, max_batch=0)


class TestBatchWindows:
    def test_arithmetic_decomposes_total_time(self, converted):
        _controller, before, plan = converted
        sched = schedule(plan, before, max_batch=8)
        windows = sched.batch_windows(start=10.0)
        assert len(windows) == sched.num_batches
        tech = sched.technology
        for i, (down, up) in enumerate(windows):
            begin = 10.0 + i * (tech.control_overhead + tech.switch_delay)
            assert down == pytest.approx(begin + tech.control_overhead)
            assert up - down == pytest.approx(sched.blink_window)
        assert windows[-1][1] == pytest.approx(10.0 + sched.total_time)

    def test_dark_links_parallel_batches(self, converted):
        _controller, before, plan = converted
        sched = schedule(plan, before)
        assert len(sched.dark_links) == sched.num_batches
        # Every removed link blinks in exactly one batch.
        blinked = [frozenset(pair)
                   for links in sched.dark_links for pair in links]
        assert set(blinked) == {
            frozenset(pair) for pair in plan.links_removed
        }

    def test_empty_schedule_has_no_windows(self):
        sched = Schedule(technology=MEMS_OPTICAL)
        assert sched.batch_windows() == []


class TestAudit:
    def test_ledger_matches_blink_window(self, converted):
        """The event-level ledger reproduces the batch arithmetic."""
        from repro.monitor import NetworkMonitor

        controller, before, plan = converted
        sched = schedule(plan, before, technology=MEMS_OPTICAL)
        monitor = NetworkMonitor(before)
        finish = audit(sched, monitor, start=1.0)
        assert finish == pytest.approx(1.0 + sched.total_time)
        downtime = monitor.downtime()
        assert downtime
        for dark in downtime.values():
            assert dark == pytest.approx(sched.blink_window)
        assert monitor.open_dark_links() == []
        assert monitor.total_dark_time() == pytest.approx(
            len(downtime) * sched.blink_window
        )

    def test_parallel_cables_blink_once_per_batch(self, converted):
        """Duplicate (u, v) pairs in one batch yield one ledger window."""
        from repro.monitor import NetworkMonitor

        _controller, before, plan = converted
        u, v = plan.links_removed[0]
        sched = Schedule(technology=MEMS_OPTICAL,
                         batches=[["c0"]],
                         dark_links=[[(u, v), (u, v), (v, u)]])
        monitor = NetworkMonitor(before)
        audit(sched, monitor)
        assert monitor.dark_windows(u, v) == [
            pytest.approx(w) for w in sched.batch_windows()
        ]


class TestDisruption:
    def test_counts_paths_over_dark_links(self, converted):
        _controller, _before, plan = converted
        u, v = plan.links_removed[0]
        hit = (1, Path((u, v)))
        # A same-Pod edge-agg hop never blinks (bipartite links are
        # static in every mode).
        miss = (2, Path((EdgeSwitch(0, 0), AggSwitch(0, 0))))
        assert disruption(plan, [hit, miss]) == pytest.approx(0.5)

    def test_empty_flows_rejected(self, converted):
        _controller, _before, plan = converted
        with pytest.raises(ConfigurationError):
            disruption(plan, [])

    def test_full_conversion_disrupts_core_paths(self, converted):
        """Most agg-core circuits blink in a full conversion."""
        _controller, before, plan = converted
        flows = []
        fid = 0
        for core in list(before.switches_of_kind("core"))[:8]:
            for nbr in before.fabric[core]:
                flows.append((fid, Path((nbr, core))))
                fid += 1
        assert disruption(plan, flows) > 0.5


class TestAuditEdgeCases:
    """Satellite: empty plans / zero blink must not ledger anything."""

    def test_empty_plan_empty_ledger(self):
        from repro.monitor import NetworkMonitor
        from repro.topology.elements import Network, PlainSwitch

        net = Network("tiny")
        net.add_switch(PlainSwitch(0), 4)
        monitor = NetworkMonitor(net)
        sched = Schedule(technology=MEMS_OPTICAL)
        finish = audit(sched, monitor, start=4.0)
        assert finish == 4.0
        assert monitor.downtime() == {}
        assert monitor.open_dark_links() == []

    def test_zero_blink_window_empty_ledger(self, converted):
        """A zero-delay technology must not record [t, t] windows."""
        from repro.monitor import NetworkMonitor

        _controller, before, plan = converted
        instant = Technology("instant", switch_delay=0.0,
                             control_overhead=5e-3)
        sched = schedule(plan, before, technology=instant)
        assert sched.blink_window == 0.0
        monitor = NetworkMonitor(before)
        finish = audit(sched, monitor, start=0.0)
        assert finish == pytest.approx(sched.total_time)
        assert monitor.downtime() == {}
        assert monitor.total_dark_time() == 0.0


class TestPairAtomicBatches:
    def test_pairs_never_split_across_batches(self, converted):
        controller, before, plan = converted
        pairs = controller.flattree.pairs
        sched = schedule(plan, before, max_batch=2, pairs=pairs)
        position = {}
        for index, batch in enumerate(sched.batches):
            for cid in batch:
                position[cid] = index
        in_plan = set(plan.config_changes)
        split = [
            (left, right) for left, right in pairs
            if left in in_plan and right in in_plan
            and position[left] != position[right]
        ]
        assert split == []
        scheduled = [cid for batch in sched.batches for cid in batch]
        assert sorted(scheduled) == sorted(plan.config_changes)

    def test_no_pairs_identical_to_historical(self, converted):
        _controller, before, plan = converted
        with_none = schedule(plan, before, max_batch=16)
        explicit = schedule(plan, before, max_batch=16, pairs=())
        assert with_none.batches == explicit.batches
        assert with_none.dark_links == explicit.dark_links


class TestRetryPolicy:
    def test_backoff_caps(self):
        from repro.core.reconfigure import RetryPolicy

        policy = RetryPolicy(base_backoff=1e-3, backoff_factor=2.0,
                             max_backoff=3e-3)
        assert policy.backoff(1) == pytest.approx(1e-3)
        assert policy.backoff(2) == pytest.approx(2e-3)
        assert policy.backoff(3) == pytest.approx(3e-3)  # capped
        assert policy.backoff(10) == pytest.approx(3e-3)

    def test_invalid_policies_rejected(self):
        from repro.core.reconfigure import RetryPolicy

        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(batch_timeout=0.0)
