"""Unit tests for the cost model."""

from __future__ import annotations

import pytest

from repro.core.cost import bill_of_materials, relative_cost
from repro.core.design import FlatTreeDesign
from repro.errors import ConfigurationError


class TestBillOfMaterials:
    def test_k8_counts(self, design8):
        bom = bill_of_materials(design8)
        # k=8: 8 pods x 4 pairs, m=1, n=2.
        assert bom.six_port_converters == 32
        assert bom.four_port_converters == 64
        assert bom.total_converters == 96
        assert bom.total_converter_ports == 4 * 64 + 6 * 32

    def test_matches_plant_inventory(self, design8, flattree8):
        bom = bill_of_materials(design8)
        assert bom.total_converters == len(flattree8.converters)
        assert bom.six_port_converters == len(flattree8.six_port_ids())

    def test_side_bundles_match_pairs(self, design8, flattree8):
        bom = bill_of_materials(design8)
        assert bom.side_bundles == len(flattree8.pairs)

    def test_line_has_fewer_bundles(self):
        ring = bill_of_materials(FlatTreeDesign.for_fat_tree(8, ring=True))
        line = bill_of_materials(FlatTreeDesign.for_fat_tree(8, ring=False))
        assert line.side_bundles < ring.side_bundles
        assert line.extra_cables < ring.extra_cables

    def test_odd_d_middle_loses_side_pair(self):
        bom = bill_of_materials(FlatTreeDesign.for_fat_tree(6))  # d = 3
        # m=1: 2 usable side columns of 3.
        assert bom.side_connector_pairs_per_pod == 2

    def test_connector_counts_per_pod(self, design8):
        bom = bill_of_materials(design8)
        assert bom.core_connectors_per_pod == 4 * 3
        assert bom.server_connectors_per_pod == 4 * 3


class TestRelativeCost:
    def test_small_fraction_of_switch_cost(self, design8):
        """The §2.7 claim, quantified: at a 10:1 port-price ratio the
        converter add-on is ~7% of the switch-port bill (the converter
        port count is ~0.7x the switch port count at m=k/8, n=2k/8)."""
        assert relative_cost(design8) < 0.10

    def test_scales_with_price_ratio(self, design8):
        cheap = relative_cost(design8, converter_port_price=0.01)
        pricey = relative_cost(design8, converter_port_price=0.5)
        assert pricey == pytest.approx(50 * cheap)

    def test_bad_prices_rejected(self, design8):
        with pytest.raises(ConfigurationError):
            relative_cost(design8, switch_port_price=0)
        with pytest.raises(ConfigurationError):
            relative_cost(design8, converter_port_price=-1)

    def test_grows_with_mn(self):
        lean = FlatTreeDesign.for_fat_tree(16, m=1, n=1)
        rich = FlatTreeDesign.for_fat_tree(16, m=2, n=4)
        assert relative_cost(rich) > relative_cost(lean)
