"""Unit tests for Pod blade geometry."""

from __future__ import annotations

from repro.core.design import FlatTreeDesign
from repro.core.pod import (
    PodSide,
    blade_a_server_slot,
    blade_b_server_slot,
    direct_server_slots,
    half_width,
    left_columns,
    middle_column,
    right_columns,
    side_of_edge,
)


class TestSides:
    def test_even_d_split(self):
        # d = 4: edges 0,1 left; 2,3 right; no middle.
        assert left_columns(4) == [0, 1]
        assert right_columns(4) == [2, 3]
        assert middle_column(4) is None
        assert side_of_edge(4, 0) is PodSide.LEFT
        assert side_of_edge(4, 3) is PodSide.RIGHT

    def test_odd_d_middle(self):
        # d = 5: edges 0,1 left; 3,4 right; 2 is the unpaired middle.
        assert left_columns(5) == [0, 1]
        assert right_columns(5) == [3, 4]
        assert middle_column(5) == 2
        assert side_of_edge(5, 2) is PodSide.MIDDLE

    def test_half_width(self):
        assert half_width(4) == 2
        assert half_width(5) == 2
        assert half_width(3) == 1

    def test_d2_minimal(self):
        assert left_columns(2) == [0]
        assert right_columns(2) == [1]
        assert middle_column(2) is None


class TestServerSlots:
    def test_blade_b_slots_first(self):
        assert blade_b_server_slot(0) == 0
        assert blade_b_server_slot(2) == 2

    def test_blade_a_slots_after_b(self):
        design = FlatTreeDesign.for_fat_tree(16)  # m=2, n=4
        assert blade_a_server_slot(design, 0) == 2
        assert blade_a_server_slot(design, 3) == 5

    def test_direct_slots_are_remainder(self):
        design = FlatTreeDesign.for_fat_tree(16)  # servers_per_edge = 8
        assert list(direct_server_slots(design)) == [6, 7]

    def test_slot_partition_complete(self):
        """B rows, A rows and direct slots partition the edge's servers."""
        design = FlatTreeDesign.for_fat_tree(8)
        slots = set()
        for row in range(design.m):
            slots.add(blade_b_server_slot(row))
        for row in range(design.n):
            slots.add(blade_a_server_slot(design, row))
        slots.update(direct_server_slots(design))
        assert slots == set(range(design.params.servers_per_edge))
