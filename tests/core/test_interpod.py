"""Unit tests for inter-Pod side wiring."""

from __future__ import annotations

from collections import Counter

from repro.core.converter import BLADE_B, ConverterConfig
from repro.core.design import FlatTreeDesign
from repro.core.interpod import (
    boundaries,
    iter_pairs,
    paired_column,
    paired_config_for_row,
)


class TestBoundaries:
    def test_ring_wraps(self):
        design = FlatTreeDesign.for_fat_tree(8, ring=True)
        b = boundaries(design)
        assert len(b) == 8
        assert (7, 0) in b

    def test_line_does_not_wrap(self):
        design = FlatTreeDesign.for_fat_tree(8, ring=False)
        b = boundaries(design)
        assert len(b) == 7
        assert (7, 0) not in b


class TestPairedColumn:
    def test_paper_formula(self):
        # <i, j> left pairs with <i, (d/2 - 1 - j + i) % (d/2)> right.
        d = 8  # half = 4
        assert paired_column(d, 0, 0) == 3
        assert paired_column(d, 0, 3) == 0
        assert paired_column(d, 1, 0) == 0  # shift by row
        assert paired_column(d, 2, 1) == 0

    def test_bijection_per_row(self):
        d = 8
        for row in range(4):
            targets = [paired_column(d, row, j) for j in range(4)]
            assert sorted(targets) == [0, 1, 2, 3]

    def test_odd_d_uses_floor_half(self):
        d = 5  # half = 2
        for row in range(3):
            targets = [paired_column(d, row, j) for j in range(2)]
            assert sorted(targets) == [0, 1]


class TestIterPairs:
    def test_every_paired_converter_once(self):
        design = FlatTreeDesign.for_fat_tree(8)  # d=4, half=2, m=1
        seen = Counter()
        for left, right in iter_pairs(design):
            assert left.blade == BLADE_B and right.blade == BLADE_B
            assert left.row == right.row
            seen[left] += 1
            seen[right] += 1
        # Ring: every 6-port converter participates in exactly one pair.
        expected = design.params.pods * design.m * design.params.d
        assert sum(seen.values()) == expected
        assert all(count == 1 for count in seen.values())

    def test_left_right_side_assignment(self):
        design = FlatTreeDesign.for_fat_tree(8)
        d = design.params.d
        half = d // 2
        for left, right in iter_pairs(design):
            assert left.edge < half          # left blade column
            assert right.edge >= d - half    # right blade column

    def test_adjacent_pods_only(self):
        design = FlatTreeDesign.for_fat_tree(8)
        pods = design.params.pods
        for left, right in iter_pairs(design):
            assert left.pod == (right.pod + 1) % pods

    def test_line_leaves_end_blades_unpaired(self):
        design = FlatTreeDesign.for_fat_tree(8, ring=False)
        paired = set()
        for left, right in iter_pairs(design):
            paired.add(left)
            paired.add(right)
        # Pod 0's left blade and the last Pod's right blade stay dark.
        assert not any(c.pod == 0 and c.edge < 2 for c in paired)
        assert not any(c.pod == 7 and c.edge >= 2 for c in paired)


class TestRowParity:
    def test_even_rows_side_odd_rows_cross(self):
        assert paired_config_for_row(0) is ConverterConfig.SIDE
        assert paired_config_for_row(1) is ConverterConfig.CROSS
        assert paired_config_for_row(2) is ConverterConfig.SIDE
        assert paired_config_for_row(3) is ConverterConfig.CROSS
