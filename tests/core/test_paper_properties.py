"""The paper's stated structural properties, verified on real networks.

§2.3 claims two properties of the Pod-core wiring; §2.1/§3.1 claim
equipment equality across modes.  These tests check them on actual
materializations, not just on the wiring arithmetic — plus
hypothesis-driven conversion invariants over random hybrid maps.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.conversion import Mode, convert, hybrid_configs
from repro.core.design import FlatTreeDesign
from repro.core.flattree import FlatTree
from repro.core.wiring import WiringPattern, coverage_is_uniform
from repro.topology.elements import CoreSwitch
from repro.topology.fattree import build_fat_tree
from repro.topology.stats import link_kind_profile, server_spread
from repro.topology.validate import assert_same_equipment, assert_valid


def global_net(k, pattern=None):
    design = FlatTreeDesign.for_fat_tree(k, pattern=pattern)
    return design, convert(FlatTree(design), Mode.GLOBAL_RANDOM)


class TestProperty1ServersUniform:
    """§2.3 Property 1: servers uniform across core switches."""

    @pytest.mark.parametrize("k", [8, 12, 16, 20])
    def test_uniform_under_profiled_pattern(self, k):
        design, net = global_net(k)
        assert coverage_is_uniform(design.params, design.m, design.pattern)
        lo, hi = server_spread(net, "core")
        # Exactly uniform: every core group receives pods * m servers
        # spread over h/r positions.
        expected = design.params.pods * design.m // design.params.group_size
        assert (lo, hi) == (expected, expected)

    def test_odd_d_middle_group_excluded(self):
        """d odd: the middle column's cores get no servers (unpaired
        6-port converters fall back to local) — uniformity holds per
        usable group."""
        design, net = global_net(6)
        counts = {
            c: net.server_count(CoreSwitch(c))
            for c in range(design.params.num_cores)
        }
        middle_group = set(design.params.core_group(1))
        for c, count in counts.items():
            if c in middle_group:
                assert count == 0
            else:
                assert count == design.params.pods * design.m // design.params.group_size


class TestProperty2LinkTypesEqual:
    """§2.3 Property 2: cores have equal link counts of each type.

    The paper asserts this unconditionally; under this library's
    rotation it holds exactly when ``profile_is_uniform`` does (the
    rotation gcd must divide both m and n).  k = 8 and 16 satisfy it;
    k = 12 (m = 2, n = 3, gcd 2) provably does not, under either
    pattern — a documented looseness of the workshop paper's claim.
    """

    @pytest.mark.parametrize("k", [8, 16])
    def test_link_profiles_identical_when_predicted(self, k):
        from repro.core.wiring import profile_is_uniform

        design, net = global_net(k)
        assert profile_is_uniform(
            design.params, design.m, design.n, design.pattern
        )
        for edge_index in range(design.params.d):
            profiles = [
                tuple(sorted(link_kind_profile(net, CoreSwitch(c)).items()))
                for c in design.params.core_group(edge_index)
            ]
            assert len(set(profiles)) == 1

    def test_k12_violates_property_2_as_predicted(self):
        from repro.core.wiring import profile_is_uniform

        design, net = global_net(12)
        assert not profile_is_uniform(
            design.params, design.m, design.n, design.pattern
        )
        profiles = {
            tuple(sorted(link_kind_profile(net, CoreSwitch(c)).items()))
            for c in design.params.core_group(0)
        }
        assert len(profiles) > 1


class TestEquipmentInvariance:
    """§1/§3.1: every mode uses the identical equipment."""

    @given(
        st.sampled_from([4, 6, 8]),
        st.lists(
            st.sampled_from(list(Mode)), min_size=1, max_size=8
        ),
    )
    def test_random_hybrid_maps_preserve_equipment(self, k, mode_seq):
        design = FlatTreeDesign.for_fat_tree(k)
        ft = FlatTree(design)
        pod_modes = {
            p: mode_seq[p % len(mode_seq)] for p in range(design.params.pods)
        }
        ft.set_configs(hybrid_configs(ft, pod_modes))
        net = ft.materialize()
        assert_valid(net)
        assert_same_equipment(net, build_fat_tree(k))

    @given(st.sampled_from([4, 6, 8, 10]))
    def test_total_cables_invariant(self, k):
        """Conversion rewires but never creates or destroys cables."""
        ft = FlatTree(FlatTreeDesign.for_fat_tree(k))
        counts = {
            mode: convert(ft, mode).num_cables
            for mode in (Mode.CLOS, Mode.GLOBAL_RANDOM, Mode.LOCAL_RANDOM)
        }
        clos_cables = counts[Mode.CLOS]
        # Global mode converts m*d*pods server attachments into... the
        # cable count may shift between attachment and switch-switch
        # circuits, but cables + server attachments is conserved.
        fat = build_fat_tree(k)
        for mode, cables in counts.items():
            net = convert(ft, mode)
            assert cables + net.num_servers == (
                fat.num_cables + fat.num_servers
            )


class TestPattern2KnownNonUniformity:
    """The documented deviation: literal pattern 2 can break Property 1."""

    def test_k8_pattern2_lumpy(self):
        design, net = global_net(8, pattern=WiringPattern.PATTERN2)
        lo, hi = server_spread(net, "core")
        assert lo == 0 and hi > 0  # some cores get no servers at all
        assert not coverage_is_uniform(
            design.params, design.m, WiringPattern.PATTERN2
        )
