"""Unit tests for failure injection and self-recovery."""

from __future__ import annotations

import pytest

from repro.core.controller import Controller
from repro.core.conversion import Mode, convert, mode_configs
from repro.core.converter import ConverterConfig
from repro.core.design import FlatTreeDesign
from repro.core.failures import (
    FailureSet,
    Leg,
    heal,
    materialize_with_failures,
    surviving_own_links,
)
from repro.core.flattree import FlatTree
from repro.topology.elements import CoreSwitch
from repro.topology.stats import is_connected


@pytest.fixture()
def ft():
    return FlatTree(FlatTreeDesign.for_fat_tree(8))


def first_converter(ft, blade="A"):
    ids = ft.four_port_ids() if blade == "A" else ft.six_port_ids()
    return sorted(ids)[0]


class TestFailureSet:
    def test_of_legs(self, ft):
        cid = first_converter(ft)
        failures = FailureSet.of_legs((cid, Leg.CORE), (cid, Leg.EDGE))
        assert failures.dead_legs(cid) == {Leg.CORE, Leg.EDGE}
        assert not failures.is_empty()

    def test_empty(self):
        assert FailureSet().is_empty()

    def test_switch_failure_kills_cables(self, ft):
        failures = FailureSet(switches=frozenset({CoreSwitch(0)}))
        assert failures.cable_dead(CoreSwitch(0), CoreSwitch(1))


class TestSurvivingLinks:
    def test_no_failures_full_links(self, ft):
        conv = ft.converters[first_converter(ft)]
        links = surviving_own_links(conv, ConverterConfig.DEFAULT, FailureSet())
        assert len(links) == 2

    def test_dead_core_leg_kills_ac_circuit(self, ft):
        cid = first_converter(ft)
        conv = ft.converters[cid]
        failures = FailureSet.of_legs((cid, Leg.CORE))
        links = surviving_own_links(conv, ConverterConfig.DEFAULT, failures)
        assert links == [("attach", conv.server, conv.edge)]

    def test_dead_edge_leg_strands_server_in_default(self, ft):
        cid = first_converter(ft)
        conv = ft.converters[cid]
        failures = FailureSet.of_legs((cid, Leg.EDGE))
        links = surviving_own_links(conv, ConverterConfig.DEFAULT, failures)
        assert all(link[0] != "attach" for link in links)
        # ... but LOCAL keeps the server alive through the agg leg.
        links = surviving_own_links(conv, ConverterConfig.LOCAL, failures)
        assert ("attach", conv.server, conv.agg) in links


class TestMaterializeWithFailures:
    def test_no_failures_matches_materialize(self, ft):
        ft.set_configs(mode_configs(ft, Mode.GLOBAL_RANDOM))
        degraded = materialize_with_failures(ft, FailureSet())
        normal = ft.materialize()
        assert set(degraded.fabric.edges()) == set(normal.fabric.edges())
        assert degraded.num_servers == normal.num_servers

    def test_stranded_server_counted(self, ft):
        cid = first_converter(ft)
        conv = ft.converters[cid]
        failures = FailureSet.of_legs((cid, Leg.EDGE))
        degraded = materialize_with_failures(ft, failures)
        assert conv.server not in set(degraded.servers())

    def test_dead_switch_removed(self, ft):
        failures = FailureSet(switches=frozenset({CoreSwitch(3)}))
        degraded = materialize_with_failures(ft, failures)
        assert CoreSwitch(3) not in set(degraded.switches())
        assert is_connected(degraded)

    def test_dead_direct_cable_removed(self, ft):
        u, v = ft._direct_cables[0]
        failures = FailureSet(cables=frozenset({frozenset((u, v))}))
        degraded = materialize_with_failures(ft, failures)
        normal = ft.materialize()
        assert degraded.capacity(u, v) == normal.capacity(u, v) - 1


class TestHeal:
    def test_heal_reattaches_server(self, ft):
        """EDGE leg dies in default config -> healing flips to local."""
        cid = first_converter(ft)
        failures = FailureSet.of_legs((cid, Leg.EDGE))
        assignment = heal(ft, failures)
        assert assignment[cid] is ConverterConfig.LOCAL
        ft.set_configs(assignment)
        degraded = materialize_with_failures(ft, failures)
        assert ft.converters[cid].server in set(degraded.servers())

    def test_heal_is_stable_without_failures(self, ft):
        ft.set_configs(mode_configs(ft, Mode.GLOBAL_RANDOM))
        assignment = heal(ft, FailureSet())
        assert assignment == ft.configs()

    def test_heal_six_port_side_bundle_cut(self, ft):
        """A cut side bundle forces the pair off side/cross."""
        ft.set_configs(mode_configs(ft, Mode.GLOBAL_RANDOM))
        left, right = ft.pairs[0]
        failures = FailureSet.of_legs((left, Leg.SIDE))
        assignment = heal(ft, failures)
        from repro.core.converter import PAIRED_CONFIGS

        assert assignment[left] not in PAIRED_CONFIGS
        assert assignment[right] not in PAIRED_CONFIGS
        ft.set_configs(assignment)  # must be a legal assignment

    def test_heal_keeps_servers_attached_network_wide(self, ft):
        """Random multi-failure: healing strands no recoverable server."""
        ft.set_configs(mode_configs(ft, Mode.GLOBAL_RANDOM))
        victims = sorted(ft.six_port_ids())[:3]
        failures = FailureSet.of_legs(
            *[(cid, Leg.CORE) for cid in victims]
        )
        ft.set_configs(heal(ft, failures))
        degraded = materialize_with_failures(ft, failures)
        # A dead CORE leg still leaves agg/edge legs; every server must
        # therefore be reattached somewhere.
        assert degraded.num_servers == ft.params.num_servers


class TestControllerRecover:
    def test_recover_produces_plan_and_reroutes(self):
        controller = Controller(FlatTree(FlatTreeDesign.for_fat_tree(8)))
        controller.apply_mode(Mode.GLOBAL_RANDOM)
        cid = sorted(controller.flattree.six_port_ids())[0]
        failures = FailureSet.of_legs((cid, Leg.SIDE))
        plan = controller.recover(failures)
        assert plan.converter_count >= 2  # the pair moves together
        degraded = materialize_with_failures(controller.flattree, failures)
        assert is_connected(degraded)
        assert degraded.num_servers == controller.flattree.params.num_servers


class TestFailureSetValidation:
    """Unknown ids must fail loudly, naming the offender."""

    def test_unknown_converter_rejected(self, ft):
        from repro.core.converter import ConverterId
        from repro.errors import ConfigurationError

        ghost = ConverterId(pod=99, blade="A", row=0, edge=0)
        failures = FailureSet.of_legs((ghost, Leg.CORE))
        with pytest.raises(ConfigurationError, match="unknown converter"):
            materialize_with_failures(ft, failures)
        with pytest.raises(ConfigurationError, match="99"):
            heal(ft, failures)

    def test_unknown_switch_rejected(self, ft):
        from repro.errors import ConfigurationError

        failures = FailureSet(
            switches=frozenset({CoreSwitch(10_000)})
        )
        with pytest.raises(ConfigurationError, match="unknown switch"):
            failures.validate(ft)

    def test_unknown_cable_endpoint_rejected(self, ft):
        from repro.errors import ConfigurationError

        failures = FailureSet(cables=frozenset({
            frozenset((CoreSwitch(0), CoreSwitch(10_000)))
        }))
        with pytest.raises(ConfigurationError, match="dead cable"):
            materialize_with_failures(ft, failures)

    def test_known_ids_pass(self, ft):
        cid = first_converter(ft)
        failures = FailureSet.of_legs((cid, Leg.CORE))
        failures.validate(ft)  # must not raise


class TestHealSideBundle:
    """Joint pairing decisions under SIDE-leg loss (satellite #3)."""

    def _paired(self, ft):
        from repro.core.conversion import mode_configs

        ft.set_configs(mode_configs(ft, Mode.GLOBAL_RANDOM))
        return ft.pairs[0]

    def test_both_peers_lose_side_leg(self, ft):
        from repro.core.converter import PAIRED_CONFIGS

        left, right = self._paired(ft)
        failures = FailureSet.of_legs((left, Leg.SIDE), (right, Leg.SIDE))
        assignment = heal(ft, failures)
        assert assignment[left] not in PAIRED_CONFIGS
        assert assignment[right] not in PAIRED_CONFIGS
        ft.set_configs(assignment)
        degraded = materialize_with_failures(ft, failures)
        servers = set(degraded.servers())
        assert ft.converters[left].server in servers
        assert ft.converters[right].server in servers

    def test_one_peer_loses_side_leg(self, ft):
        """One dead SIDE leg kills the bundle for both ends jointly."""
        from repro.core.converter import PAIRED_CONFIGS

        left, right = self._paired(ft)
        failures = FailureSet.of_legs((right, Leg.SIDE))
        assignment = heal(ft, failures)
        # The pair must move together: half a pair is illegal.
        assert assignment[left] not in PAIRED_CONFIGS
        assert assignment[right] not in PAIRED_CONFIGS
        ft.set_configs(assignment)

    def test_unrecoverable_server_reported_not_asserted(self, ft):
        """A dead SERVER leg strands the server in every config."""
        from repro.core.failures import heal_report

        left, right = self._paired(ft)
        failures = FailureSet.of_legs(
            (left, Leg.SERVER), (left, Leg.SIDE), (right, Leg.SIDE)
        )
        outcome = heal_report(ft, failures)
        assert left in outcome.unrecoverable
        assert right not in outcome.unrecoverable
        ft.set_configs(outcome.assignment)
        degraded = materialize_with_failures(ft, failures)
        assert ft.converters[left].server not in set(degraded.servers())
        assert is_connected(degraded)

    def test_heal_report_counts_and_event(self, ft):
        from repro import obs
        from repro.core.failures import heal_report
        from repro.obs.sinks import MemorySink

        left, _right = self._paired(ft)
        failures = FailureSet.of_legs((left, Leg.SIDE))
        sink = MemorySink()
        obs.enable(sink)
        try:
            outcome = heal_report(ft, failures, t=2.5)
        finally:
            obs.disable()
        events = sink.events
        assert len(outcome.reconfigured) >= 2
        assert outcome.unrecoverable == ()
        heals = [e for e in events if e.get("name") == "core.failures.heal"]
        assert len(heals) == 1
        assert heals[0]["t"] == 2.5
        assert heals[0]["reconfigured"] == len(outcome.reconfigured)
