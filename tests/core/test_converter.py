"""Unit tests for converter switches and their configurations."""

from __future__ import annotations

import pytest

from repro.core.converter import (
    BLADE_A,
    BLADE_B,
    Converter,
    ConverterConfig,
    ConverterId,
    pair_links,
)
from repro.errors import ConfigurationError
from repro.topology.elements import AggSwitch, CoreSwitch, EdgeSwitch


def make_converter(blade=BLADE_A, peer=None, pod=0, row=0, edge=0, server=1):
    return Converter(
        cid=ConverterId(pod, blade, row, edge),
        core=CoreSwitch(10 + pod),
        agg=AggSwitch(pod, 0),
        edge=EdgeSwitch(pod, edge),
        server=server,
        peer=peer,
    )


class TestConverterId:
    def test_blade_validation(self):
        with pytest.raises(ConfigurationError):
            ConverterId(0, "C", 0, 0)

    def test_is_six_port(self):
        assert ConverterId(0, BLADE_B, 0, 0).is_six_port
        assert not ConverterId(0, BLADE_A, 0, 0).is_six_port

    def test_ordering_stable(self):
        a = ConverterId(0, BLADE_A, 0, 0)
        b = ConverterId(0, BLADE_A, 0, 1)
        assert a < b


class TestValidConfigs:
    def test_four_port_configs(self):
        conv = make_converter(BLADE_A)
        assert conv.valid_configs == {
            ConverterConfig.DEFAULT,
            ConverterConfig.LOCAL,
        }

    def test_six_port_with_peer_all_configs(self):
        conv = make_converter(BLADE_B, peer=ConverterId(1, BLADE_B, 0, 3))
        assert conv.valid_configs == set(ConverterConfig)

    def test_six_port_without_peer_limited(self):
        """The odd-d middle column: side connectors unused (paper §2.2)."""
        conv = make_converter(BLADE_B, peer=None)
        assert ConverterConfig.SIDE not in conv.valid_configs
        assert ConverterConfig.CROSS not in conv.valid_configs

    def test_four_port_side_rejected(self):
        conv = make_converter(BLADE_A)
        with pytest.raises(ConfigurationError):
            conv.check_config(ConverterConfig.SIDE)


class TestOwnLinks:
    def test_default_restores_clos(self):
        conv = make_converter(BLADE_A)
        links = conv.own_links(ConverterConfig.DEFAULT)
        assert ("cable", conv.agg, conv.core) in links
        assert ("attach", conv.server, conv.edge) in links

    def test_local_relocates_server_to_agg(self):
        conv = make_converter(BLADE_A)
        links = conv.own_links(ConverterConfig.LOCAL)
        assert ("cable", conv.core, conv.edge) in links
        assert ("attach", conv.server, conv.agg) in links

    def test_side_relocates_server_to_core(self):
        conv = make_converter(BLADE_B, peer=ConverterId(1, BLADE_B, 0, 3))
        conv.config = ConverterConfig.SIDE
        links = conv.own_links()
        assert links == [("attach", conv.server, conv.core)]

    def test_illegal_config_raises(self):
        conv = make_converter(BLADE_A)
        with pytest.raises(ConfigurationError):
            conv.own_links(ConverterConfig.CROSS)


class TestPairLinks:
    def make_pair(self, left_config, right_config):
        left = make_converter(BLADE_B, pod=1, edge=0, server=5)
        right = make_converter(BLADE_B, pod=0, edge=3, server=9)
        left.peer = right.cid
        right.peer = left.cid
        left.config = left_config
        right.config = right_config
        return left, right

    def test_side_gives_peer_wise_links(self):
        left, right = self.make_pair(ConverterConfig.SIDE, ConverterConfig.SIDE)
        links = pair_links(left, right)
        assert ("cable", left.edge, right.edge) in links
        assert ("cable", left.agg, right.agg) in links

    def test_cross_gives_edge_agg_links(self):
        left, right = self.make_pair(
            ConverterConfig.CROSS, ConverterConfig.CROSS
        )
        links = pair_links(left, right)
        assert ("cable", left.edge, right.agg) in links
        assert ("cable", left.agg, right.edge) in links

    def test_dark_bundle_when_unpaired_configs(self):
        left, right = self.make_pair(
            ConverterConfig.DEFAULT, ConverterConfig.LOCAL
        )
        assert pair_links(left, right) == []

    def test_mismatched_paired_configs_raise(self):
        left, right = self.make_pair(ConverterConfig.SIDE, ConverterConfig.CROSS)
        with pytest.raises(ConfigurationError):
            pair_links(left, right)

    def test_half_dark_bundle_raises(self):
        left, right = self.make_pair(
            ConverterConfig.SIDE, ConverterConfig.DEFAULT
        )
        with pytest.raises(ConfigurationError):
            pair_links(left, right)

    def test_non_peers_raise(self):
        left, right = self.make_pair(ConverterConfig.SIDE, ConverterConfig.SIDE)
        right.peer = ConverterId(5, BLADE_B, 0, 0)
        with pytest.raises(ConfigurationError):
            pair_links(left, right)
