"""Smoke tests: every shipped example runs cleanly end to end.

The examples are part of the public deliverable; these tests execute
them as real subprocesses (fresh interpreter, no shared state) and
check both the exit status and the presence of their headline output.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name: str) -> str:
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=600,
        check=False,
    )
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stdout}\n{result.stderr}"
    )
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "cable-for-cable identical" in out
        assert "Figure 5 metric" in out

    def test_workload_aware_conversion(self):
        out = run_example("workload_aware_conversion.py")
        assert "zones are isolated" in out
        assert "night shift" in out

    def test_profiling_design(self):
        out = run_example("profiling_design.py")
        assert "<-- chosen" in out
        assert "oversubscribed" in out

    def test_live_conversion_fct(self):
        out = run_example("live_conversion_fct.py")
        assert "mean FCT" in out
        assert out.count("convert to") == 2

    def test_self_healing(self):
        out = run_example("self_healing.py")
        assert "0 server(s) dark" in out
        assert "sleeping" in out

    def test_multistage_flattree(self):
        out = run_example("multistage_flattree.py")
        assert "Convert bottom-up" in out
        assert "cuts the APL" in out

    def test_every_example_has_a_test(self):
        """Adding an example without a smoke test should fail CI."""
        scripts = {
            f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
        }
        covered = {
            "quickstart.py",
            "workload_aware_conversion.py",
            "profiling_design.py",
            "live_conversion_fct.py",
            "self_healing.py",
            "multistage_flattree.py",
        }
        assert scripts == covered
