"""Unit tests for two-level fat-tree routing."""

from __future__ import annotations

import pytest

from repro.core.conversion import Mode, convert
from repro.core.design import FlatTreeDesign
from repro.core.flattree import FlatTree
from repro.errors import RoutingError
from repro.routing.twolevel import two_level_hops, two_level_route
from repro.topology.clos import ClosParams, build_clos, fat_tree_params


class TestRouteShapes:
    def test_same_switch(self, fat8, params8):
        path = two_level_route(params8, fat8, 0, 1)
        assert path.hops == 0

    def test_intra_pod(self, fat8, params8):
        src = params8.server_id(0, 0, 0)
        dst = params8.server_id(0, 1, 0)
        path = two_level_route(params8, fat8, src, dst)
        assert path.hops == 2
        assert path.nodes[1].kind == "agg"

    def test_cross_pod(self, fat8, params8):
        src = params8.server_id(0, 0, 0)
        dst = params8.server_id(5, 2, 3)
        path = two_level_route(params8, fat8, src, dst)
        assert path.hops == 4
        kinds = [n.kind for n in path.nodes]
        assert kinds == ["edge", "agg", "core", "agg", "edge"]

    def test_self_rejected(self, fat8, params8):
        with pytest.raises(RoutingError):
            two_level_route(params8, fat8, 3, 3)


class TestDeterminismAndSpread:
    def test_deterministic(self, fat8, params8):
        a = two_level_route(params8, fat8, 0, 100)
        b = two_level_route(params8, fat8, 0, 100)
        assert a == b

    def test_suffix_spreads_aggs(self, fat8, params8):
        """Different destination slots exit via different aggs."""
        src = params8.server_id(0, 0, 0)
        aggs = set()
        for slot in range(params8.servers_per_edge):
            dst = params8.server_id(5, 0, slot)
            path = two_level_route(params8, fat8, src, dst)
            aggs.add(path.nodes[1])
        assert len(aggs) == params8.aggs_per_pod

    def test_all_pairs_valid_on_fat_tree(self, fat8, params8):
        servers = list(range(0, params8.num_servers, 7))
        for src in servers:
            for dst in servers:
                if src != dst:
                    two_level_route(params8, fat8, src, dst)


class TestOnConvertedTopologies:
    def test_works_on_flat_tree_clos_mode(self, params8):
        ft = FlatTree(FlatTreeDesign.for_fat_tree(8))
        clos = convert(ft, Mode.CLOS)
        path = two_level_route(params8, clos, 0, 127)
        assert path.hops == 4

    def test_rejected_on_global_mode(self, params8):
        """Converted topologies break Clos assumptions -> explicit error."""
        ft = FlatTree(FlatTreeDesign.for_fat_tree(8))
        net = convert(ft, Mode.GLOBAL_RANDOM)
        failures = 0
        for src, dst in ((0, 127), (1, 100), (2, 90), (5, 64)):
            try:
                two_level_route(params8, net, src, dst)
            except RoutingError:
                failures += 1
        assert failures > 0


class TestGenericR:
    def test_oversubscribed_clos(self):
        params = ClosParams(pods=4, d=4, r=2, h=4, servers_per_edge=4)
        net = build_clos(params)
        src = params.server_id(0, 0, 0)
        for dst in (params.server_id(1, 3, 3), params.server_id(2, 1, 2)):
            path = two_level_route(params, net, src, dst)
            assert path.hops == 4


class TestHops:
    def test_hop_classes(self, params8):
        same_switch = (params8.server_id(0, 0, 0), params8.server_id(0, 0, 1))
        same_pod = (params8.server_id(0, 0, 0), params8.server_id(0, 1, 0))
        cross_pod = (params8.server_id(0, 0, 0), params8.server_id(1, 0, 0))
        assert two_level_hops(params8, *same_switch) == 2
        assert two_level_hops(params8, *same_pod) == 4
        assert two_level_hops(params8, *cross_pod) == 6

    def test_self_rejected(self, params8):
        with pytest.raises(RoutingError):
            two_level_hops(params8, 1, 1)
