"""Unit tests for ECMP routing."""

from __future__ import annotations

import pytest

from repro.errors import RoutingError
from repro.routing.ecmp import build_ecmp_table, ecmp_fanout, ecmp_paths
from repro.topology.elements import EdgeSwitch, PlainSwitch
from repro.topology.fattree import build_fat_tree


class TestEcmpPaths:
    def test_all_paths_are_shortest(self, fat8):
        src, dst = EdgeSwitch(0, 0), EdgeSwitch(1, 0)
        paths = ecmp_paths(fat8, src, dst)
        hops = {p.hops for p in paths}
        assert hops == {4}

    def test_cross_pod_count_is_k_squared_over_4(self):
        """Fat-tree(k) has (k/2)^2 shortest cross-pod paths."""
        for k in (4, 6):
            net = build_fat_tree(k)
            paths = ecmp_paths(net, EdgeSwitch(0, 0), EdgeSwitch(1, 0),
                               limit=None)
            assert len(paths) == (k // 2) ** 2

    def test_intra_pod_count(self, fat8):
        paths = ecmp_paths(fat8, EdgeSwitch(0, 0), EdgeSwitch(0, 1),
                           limit=None)
        assert len(paths) == 4  # one per aggregation switch

    def test_limit_respected(self, fat8):
        paths = ecmp_paths(fat8, EdgeSwitch(0, 0), EdgeSwitch(1, 0), limit=3)
        assert len(paths) == 3

    def test_same_switch(self, fat8):
        paths = ecmp_paths(fat8, EdgeSwitch(0, 0), EdgeSwitch(0, 0))
        assert paths[0].hops == 0

    def test_no_path_raises(self, fat8):
        with pytest.raises(RoutingError):
            ecmp_paths(fat8, EdgeSwitch(0, 0), PlainSwitch(999))


class TestEcmpTable:
    def test_builds_for_pairs(self, fat8):
        pairs = [(EdgeSwitch(0, 0), EdgeSwitch(1, 0)),
                 (EdgeSwitch(0, 0), EdgeSwitch(0, 1))]
        table = build_ecmp_table(fat8, pairs)
        assert len(table.paths(*pairs[0])) == 16  # capped at limit
        table.validate_on(fat8)

    def test_skips_self_pairs(self, fat8):
        table = build_ecmp_table(fat8, [(EdgeSwitch(0, 0), EdgeSwitch(0, 0))])
        assert len(table) == 0


class TestFanout:
    def test_matches_enumeration(self, fat8):
        src, dst = EdgeSwitch(0, 0), EdgeSwitch(1, 0)
        assert ecmp_fanout(fat8, src, dst) == len(
            ecmp_paths(fat8, src, dst, limit=None)
        )

    def test_identity(self, fat8):
        assert ecmp_fanout(fat8, EdgeSwitch(0, 0), EdgeSwitch(0, 0)) == 1

    def test_unreachable_raises(self, fat8):
        with pytest.raises(RoutingError):
            ecmp_fanout(fat8, EdgeSwitch(0, 0), PlainSwitch(999))

    def test_clos_mode_has_rich_multipath(self):
        """The paper's §1 Clos benefit: rich equal-cost redundancy."""
        net = build_fat_tree(8)
        assert ecmp_fanout(net, EdgeSwitch(0, 0), EdgeSwitch(7, 3)) == 16
