"""Unit tests for routing abstractions."""

from __future__ import annotations

import pytest

from repro.errors import RoutingError
from repro.routing.base import Path, RoutingTable
from repro.topology.elements import PlainSwitch


def p(*indices):
    return Path(tuple(PlainSwitch(i) for i in indices))


class TestPath:
    def test_hops_and_endpoints(self):
        path = p(0, 1, 2)
        assert path.hops == 2
        assert path.src == PlainSwitch(0)
        assert path.dst == PlainSwitch(2)
        assert path.edges() == [
            (PlainSwitch(0), PlainSwitch(1)),
            (PlainSwitch(1), PlainSwitch(2)),
        ]

    def test_single_node_path(self):
        path = p(5)
        assert path.hops == 0
        assert path.edges() == []

    def test_empty_rejected(self):
        with pytest.raises(RoutingError):
            Path(())

    def test_loops_rejected(self):
        with pytest.raises(RoutingError):
            p(0, 1, 0)

    def test_validate_on_fabric(self, triangle):
        good = Path((PlainSwitch(0), PlainSwitch(1)))
        good.validate_on(triangle)
        bad = Path((PlainSwitch(0), PlainSwitch(42)))
        with pytest.raises(RoutingError):
            bad.validate_on(triangle)


class TestRoutingTable:
    def make_table(self):
        table = RoutingTable("t")
        table.add([p(0, 1, 2), p(0, 2)])
        return table

    def test_paths_lookup(self):
        table = self.make_table()
        assert len(table.paths(PlainSwitch(0), PlainSwitch(2))) == 2

    def test_missing_route_raises(self):
        table = self.make_table()
        with pytest.raises(RoutingError):
            table.paths(PlainSwitch(2), PlainSwitch(0))

    def test_self_route_implicit(self):
        table = self.make_table()
        same = table.paths(PlainSwitch(7), PlainSwitch(7))
        assert same[0].hops == 0
        assert table.has_route(PlainSwitch(7), PlainSwitch(7))

    def test_zero_hop_paths_skipped_on_add(self):
        table = RoutingTable("t")
        table.add([p(3)])
        assert len(table) == 0

    def test_select_deterministic_and_within_options(self):
        table = self.make_table()
        options = table.paths(PlainSwitch(0), PlainSwitch(2))
        chosen = table.select(PlainSwitch(0), PlainSwitch(2), "flow-1")
        assert chosen in options
        again = table.select(PlainSwitch(0), PlainSwitch(2), "flow-1")
        assert chosen == again

    def test_select_spreads_over_flows(self):
        table = self.make_table()
        picks = {
            table.select(PlainSwitch(0), PlainSwitch(2), i)
            for i in range(64)
        }
        assert len(picks) == 2

    def test_len_counts_paths(self):
        assert len(self.make_table()) == 2

    def test_validate_on(self, triangle):
        table = RoutingTable("t")
        table.add([Path((PlainSwitch(0), PlainSwitch(1), PlainSwitch(2)))])
        table.validate_on(triangle)
        bad = RoutingTable("t")
        bad.add([Path((PlainSwitch(0), PlainSwitch(9)))])
        with pytest.raises(RoutingError):
            bad.validate_on(triangle)
