"""Unit tests for SDN path programs."""

from __future__ import annotations

import pytest

from repro.errors import RoutingError
from repro.routing.base import Path, RoutingTable
from repro.routing.ksp import build_ksp_table
from repro.routing.sdn import SdnProgram
from repro.topology.elements import PlainSwitch


def p(*indices):
    return Path(tuple(PlainSwitch(i) for i in indices))


@pytest.fixture()
def program():
    table = RoutingTable("t")
    table.add([p(0, 1, 2), p(0, 2), p(3, 1, 0)])
    return SdnProgram.compile(table)


class TestCompile:
    def test_rule_counts(self, program):
        # p(0,1,2): 2 rules; p(0,2): 1; p(3,1,0): 2.
        assert program.rule_count() == 5
        assert program.rules_at(PlainSwitch(0)) == 2
        assert program.rules_at(PlainSwitch(99)) == 0

    def test_multipath_ids_distinct(self, program):
        a = program.forward(PlainSwitch(0), PlainSwitch(2), 0)
        b = program.forward(PlainSwitch(0), PlainSwitch(2), 1)
        assert {a.hops, b.hops} == {1, 2}


class TestForward:
    def test_walks_to_destination(self, program):
        path = program.forward(PlainSwitch(3), PlainSwitch(0), 0)
        assert path.nodes == (PlainSwitch(3), PlainSwitch(1), PlainSwitch(0))

    def test_blackhole_detected(self, program):
        with pytest.raises(RoutingError, match="blackhole"):
            program.forward(PlainSwitch(2), PlainSwitch(0), 0)

    def test_loop_detected(self):
        prog = SdnProgram()
        a, b, dst = PlainSwitch(0), PlainSwitch(1), PlainSwitch(9)
        key = (a, dst, 0)
        prog.rules[a] = {key: b}
        prog.rules[b] = {key: a}
        with pytest.raises(RoutingError, match="loop"):
            prog.forward(a, dst, 0)


class TestValidate:
    def test_valid_on_real_topology(self, global8):
        switches = list(global8.switches())
        pairs = [(switches[0], switches[-1]), (switches[2], switches[10])]
        table = build_ksp_table(global8, pairs, k=4)
        program = SdnProgram.compile(table)
        program.validate_on(global8)
        for src, dst in pairs:
            walked = program.forward(src, dst, 0)
            assert walked.dst == dst

    def test_missing_link_detected(self, triangle):
        prog = SdnProgram()
        a, ghost = PlainSwitch(0), PlainSwitch(9)
        prog.rules[a] = {(a, ghost, 0): ghost}
        with pytest.raises(RoutingError):
            prog.validate_on(triangle)
