"""Unit tests for compiled two-level forwarding tables."""

from __future__ import annotations

import pytest

from repro.errors import RoutingError
from repro.routing.twolevel import two_level_route
from repro.routing.twolevel_tables import (
    Address,
    compile_two_level_tables,
)
from repro.topology.clos import ClosParams, build_clos, fat_tree_params
from repro.topology.elements import AggSwitch, CoreSwitch, EdgeSwitch


@pytest.fixture(scope="module")
def tables8():
    return compile_two_level_tables(fat_tree_params(8))


class TestAddress:
    def test_of_server(self, params8):
        addr = Address.of(params8, params8.server_id(3, 2, 1))
        assert (addr.pod, addr.edge, addr.slot) == (3, 2, 1)


class TestCompile:
    def test_every_switch_has_a_table(self, tables8, params8):
        assert len(tables8.tables) == params8.num_switches

    def test_table_sizes(self, tables8, params8):
        k = 8
        edge = tables8.table(EdgeSwitch(0, 0))
        assert edge.size == 1 + params8.aggs_per_pod
        agg = tables8.table(AggSwitch(0, 0))
        assert agg.size == params8.d + params8.h
        core = tables8.table(CoreSwitch(0))
        assert core.size == params8.pods
        # Two-level tables are tiny: O(k) per switch, never O(#servers).
        assert tables8.max_table_size() <= 2 * k

    def test_tables_valid_on_fabric(self, tables8, fat8):
        tables8.validate_on(fat8)


class TestRouteWalk:
    def test_matches_analytic_router(self, tables8, fat8, params8):
        servers = list(range(0, params8.num_servers, 5))
        for src in servers:
            for dst in servers:
                if src == dst:
                    continue
                walked = tables8.route(src, dst)
                analytic = two_level_route(params8, fat8, src, dst)
                assert walked == analytic

    def test_same_switch_delivers_immediately(self, tables8):
        path = tables8.route(0, 1)
        assert path.hops == 0

    def test_self_rejected(self, tables8):
        with pytest.raises(RoutingError):
            tables8.route(5, 5)


class TestGenericR:
    def test_oversubscribed_layout(self):
        params = ClosParams(pods=4, d=4, r=2, h=4, servers_per_edge=4)
        tables = compile_two_level_tables(params)
        net = build_clos(params)
        tables.validate_on(net)
        for src, dst in ((0, 60), (3, 17), (20, 45)):
            walked = tables.route(src, dst)
            walked.validate_on(net)
            assert walked == two_level_route(params, net, src, dst)

    def test_total_entries_scale(self):
        small = compile_two_level_tables(fat_tree_params(4))
        big = compile_two_level_tables(fat_tree_params(8))
        assert big.total_entries() > small.total_entries()
