"""Unit tests for k-shortest-paths routing."""

from __future__ import annotations

import pytest

from repro.errors import RoutingError
from repro.routing.ksp import (
    DEFAULT_K,
    build_ksp_table,
    k_shortest_paths,
    path_stretch,
)
from repro.topology.elements import PlainSwitch


class TestKShortestPaths:
    def test_sorted_by_length(self, global8):
        switches = list(global8.switches())
        paths = k_shortest_paths(global8, switches[0], switches[-1])
        hops = [p.hops for p in paths]
        assert hops == sorted(hops)
        assert len(paths) == DEFAULT_K

    def test_paths_unique(self, global8):
        switches = list(global8.switches())
        paths = k_shortest_paths(global8, switches[0], switches[-1], k=6)
        assert len({p.nodes for p in paths}) == 6

    def test_paths_loop_free_and_valid(self, global8):
        switches = list(global8.switches())
        for path in k_shortest_paths(global8, switches[3], switches[-3], k=4):
            assert len(set(path.nodes)) == len(path.nodes)
            path.validate_on(global8)

    def test_fewer_paths_than_k(self, path3):
        paths = k_shortest_paths(path3, PlainSwitch(0), PlainSwitch(2), k=5)
        assert len(paths) == 1

    def test_k_validation(self, path3):
        with pytest.raises(RoutingError):
            k_shortest_paths(path3, PlainSwitch(0), PlainSwitch(2), k=0)

    def test_same_switch(self, path3):
        paths = k_shortest_paths(path3, PlainSwitch(0), PlainSwitch(0))
        assert paths[0].hops == 0

    def test_unreachable_raises(self, path3):
        with pytest.raises(RoutingError):
            k_shortest_paths(path3, PlainSwitch(0), PlainSwitch(77))


class TestKspTable:
    def test_builds_and_validates(self, triangle):
        pairs = [(PlainSwitch(0), PlainSwitch(1))]
        table = build_ksp_table(triangle, pairs, k=3)
        paths = table.paths(PlainSwitch(0), PlainSwitch(1))
        assert [p.hops for p in paths] == [1, 2]
        table.validate_on(triangle)


class TestStretch:
    def test_stretch_ratio(self, triangle):
        paths = k_shortest_paths(triangle, PlainSwitch(0), PlainSwitch(1), k=2)
        assert path_stretch(paths) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(RoutingError):
            path_stretch([])
