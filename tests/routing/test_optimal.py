"""Unit tests for optimal-routing compilation."""

from __future__ import annotations

import pytest

from repro.errors import RoutingError
from repro.mcf.commodities import Commodity
from repro.routing.optimal import compile_optimal_routes
from repro.topology.fattree import build_fat_tree


@pytest.fixture(scope="module")
def routes4():
    net = build_fat_tree(4)
    workload = [Commodity(0, 15), Commodity(0, 8), Commodity(4, 12)]
    return net, workload, compile_optimal_routes(net, workload)


class TestCompile:
    def test_throughput_matches_lp(self, routes4):
        net, workload, routes = routes4
        from repro.experiments.common import throughput_of

        assert routes.throughput == pytest.approx(
            throughput_of(net, workload), rel=1e-6
        )

    def test_every_commodity_pair_routed(self, routes4):
        net, workload, routes = routes4
        for c in workload:
            src = net.server_switch(c.src)
            dst = net.server_switch(c.dst)
            weighted = routes.paths_for(src, dst)
            assert weighted.paths
            assert sum(weighted.normalized_weights()) == pytest.approx(1.0)

    def test_paths_valid_on_fabric(self, routes4):
        net, _workload, routes = routes4
        for weighted in routes.pairs.values():
            for path in weighted.paths:
                path.validate_on(net)

    def test_missing_pair_raises(self, routes4):
        net, _workload, routes = routes4
        src = net.server_switch(0)
        with pytest.raises(RoutingError):
            routes.paths_for(src, src)


class TestDownstreamUses:
    def test_as_routing_table(self, routes4):
        net, _workload, routes = routes4
        table = routes.as_routing_table()
        table.validate_on(net)
        assert len(table) >= len(routes.pairs)

    def test_as_sdn_program_walks(self, routes4):
        net, workload, routes = routes4
        program = routes.as_sdn_program()
        program.validate_on(net)
        for c in workload:
            src = net.server_switch(c.src)
            dst = net.server_switch(c.dst)
            walked = program.forward(src, dst, 0)
            assert walked.dst == dst

    def test_optimal_splits_achieve_lp_rate_in_fairshare(self):
        """Feeding the decomposed optimal splits to the max-min
        allocator reproduces at least the LP's concurrent rate."""
        from repro.flowsim.fairshare import RoutedFlow, max_min_fair_rates

        net = build_fat_tree(4)
        workload = [Commodity(0, 15), Commodity(4, 12)]
        routes = compile_optimal_routes(net, workload)
        flows = []
        fid = 0
        for weighted in routes.pairs.values():
            for path, weight in zip(
                weighted.paths, weighted.normalized_weights()
            ):
                # One subflow per path, demand-capped at the LP share.
                flows.append(
                    RoutedFlow(fid, path,
                               demand=weight * routes.throughput)
                )
                fid += 1
        result = max_min_fair_rates(net, flows)
        per_pair = {}
        for flow, rate in result.rates.items():
            path = flows[flow].path
            key = (path.src, path.dst)
            per_pair[key] = per_pair.get(key, 0.0) + rate
        for total in per_pair.values():
            assert total >= routes.throughput * (1 - 1e-6)
