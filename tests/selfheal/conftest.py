"""Self-heal test fixtures: isolated telemetry + synthetic traces."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.sinks import MemorySink


@pytest.fixture()
def clean_obs():
    """Guarantee telemetry is off and the registry empty around a test."""
    obs.disable()
    obs.registry.reset()
    yield
    obs.disable()
    obs.registry.reset()


@pytest.fixture()
def memory_sink(clean_obs) -> MemorySink:
    """Telemetry enabled onto an in-memory sink (metric events on)."""
    sink = MemorySink()
    obs.enable(sink, emit_metric_events=True)
    return sink


def link_sample(t, link, utilization):
    """One monitor link_sample wire event, JSON-encoded."""
    return json.dumps({
        "ts": 0.0, "name": "monitor.link_sample", "kind": "link_sample",
        "t": t, "link": link, "value": utilization,
        "utilization": utilization, "rate": utilization, "capacity": 1.0,
        "active_flows": 1,
    })


def link_down(t, link):
    """One monitor link_down wire event, JSON-encoded."""
    return json.dumps({
        "ts": 0.0, "name": "monitor.link_down", "kind": "link_down",
        "t": t, "link": link,
    })


def link_up(t, link, dark_s):
    """One monitor link_up wire event, JSON-encoded."""
    return json.dumps({
        "ts": 0.0, "name": "monitor.link_up", "kind": "link_up",
        "t": t, "link": link, "dark_s": dark_s,
    })


@pytest.fixture()
def hotspot_lines():
    """A synthetic trace: one link sustained >90% hot, then cooling off.

    200 ticks at 0.05 s: ``s1->s2`` runs at 0.97 for the first 120
    ticks then drops to 0.10; ``s2->s3`` idles at 0.20 throughout.
    The default ``link_hotspot`` rule fires once (~t=1.8 after EWMA
    warm-up + the 0.5 s sustained-for gate) and resolves once.
    """
    lines = []
    for i in range(200):
        t = i * 0.05
        hot = 0.97 if i < 120 else 0.10
        lines.append(link_sample(t, "s1->s2", hot))
        lines.append(link_sample(t, "s2->s3", 0.20))
    return lines


@pytest.fixture()
def failure_lines():
    """A synthetic trace with one open link-failure window.

    Background keepalive samples tick the trace clock; ``c0->edge``
    goes dark at t=1.0 and never recovers, so the ``link_failure``
    rule (probe ``conversion.dark_open``) fires and stays firing.
    """
    lines = []
    for i in range(80):
        t = i * 0.05
        lines.append(link_sample(t, "bg0->bg1", 0.10))
        if i == 20:
            lines.append(link_down(t, "c0->edge"))
    return lines
