"""Anti-flap guards: token bucket, cooldown gate, flap detector."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.selfheal.guard import CooldownGate, FlapDetector, TokenBucket


class TestTokenBucket:
    def test_starts_full_and_spends(self):
        bucket = TokenBucket(capacity=2, refill_per_s=1.0)
        assert bucket.take(0.0)
        assert bucket.take(0.0)
        assert not bucket.take(0.0)

    def test_refills_in_trace_time(self):
        bucket = TokenBucket(capacity=1, refill_per_s=0.5)
        assert bucket.take(0.0)
        assert not bucket.take(1.0)       # only 0.5 tokens back
        assert bucket.take(2.0)           # fully refilled

    def test_clamped_at_capacity(self):
        bucket = TokenBucket(capacity=3, refill_per_s=10.0)
        bucket.take(0.0)
        assert bucket.available(100.0) == pytest.approx(3.0)

    def test_clock_never_runs_backwards(self):
        bucket = TokenBucket(capacity=1, refill_per_s=1.0)
        assert bucket.take(5.0)
        # A stale timestamp refills nothing and does not crash.
        assert not bucket.take(4.0)
        assert bucket.take(6.0)

    def test_next_token_at(self):
        bucket = TokenBucket(capacity=1, refill_per_s=0.5)
        assert bucket.next_token_at(0.0) == 0.0
        bucket.take(0.0)
        assert bucket.next_token_at(0.0) == pytest.approx(2.0)

    def test_zero_refill_never_returns(self):
        bucket = TokenBucket(capacity=1, refill_per_s=0.0)
        bucket.take(0.0)
        assert bucket.next_token_at(1.0) == float("inf")

    def test_validation(self):
        with pytest.raises(ReproError):
            TokenBucket(capacity=0, refill_per_s=1.0)
        with pytest.raises(ReproError):
            TokenBucket(capacity=1, refill_per_s=-1.0)


class TestCooldownGate:
    def test_ready_until_armed(self):
        gate = CooldownGate()
        assert gate.ready("a", 0.0)
        gate.arm("a", 0.0, base=1.0)
        assert not gate.ready("a", 0.5)
        assert gate.ready("a", 1.0)

    def test_exponential_escalation(self):
        gate = CooldownGate()
        assert gate.arm("a", 0.0, base=1.0, factor=2.0) == 1.0
        assert gate.arm("a", 1.0, base=1.0, factor=2.0) == 2.0
        assert gate.arm("a", 3.0, base=1.0, factor=2.0) == 4.0
        assert gate.strikes("a") == 3

    def test_cap(self):
        gate = CooldownGate()
        gate.arm("a", 0.0, base=10.0, factor=10.0, cap=15.0)
        assert gate.arm("a", 0.0, base=10.0, factor=10.0, cap=15.0) == 15.0

    def test_reset_clears_escalation(self):
        gate = CooldownGate()
        gate.arm("a", 0.0, base=1.0, factor=2.0)
        gate.reset("a")
        assert gate.strikes("a") == 0
        assert gate.ready("a", 0.0)

    def test_keys_independent(self):
        gate = CooldownGate()
        gate.arm("a", 0.0, base=10.0)
        assert gate.ready("b", 0.0)


class TestFlapDetector:
    def test_quarantines_after_oscillations(self):
        det = FlapDetector(oscillations=3, window_s=5.0, quarantine_s=10.0)
        det.record_firing("r", 0.0)
        det.record_firing("r", 1.0)
        assert not det.is_quarantined("r", 1.0)
        det.record_firing("r", 2.0)
        assert det.is_quarantined("r", 2.0)
        assert det.quarantined_until("r") == pytest.approx(12.0)

    def test_window_prunes_old_firings(self):
        det = FlapDetector(oscillations=3, window_s=5.0, quarantine_s=10.0)
        det.record_firing("r", 0.0)
        det.record_firing("r", 1.0)
        det.record_firing("r", 7.0)   # first two fell out of the window
        assert not det.is_quarantined("r", 7.0)

    def test_quarantine_expires(self):
        det = FlapDetector(oscillations=2, window_s=5.0, quarantine_s=2.0)
        det.record_firing("r", 0.0)
        det.record_firing("r", 1.0)
        assert det.is_quarantined("r", 2.9)
        assert not det.is_quarantined("r", 3.0)

    def test_quarantine_escalates_and_caps(self):
        det = FlapDetector(oscillations=2, window_s=100.0,
                           quarantine_s=4.0, max_quarantine_s=10.0)
        det.record_firing("r", 0.0)
        det.record_firing("r", 0.1)
        assert det.quarantined_until("r") == pytest.approx(4.1)
        det.record_firing("r", 10.0)
        det.record_firing("r", 10.1)
        assert det.quarantined_until("r") == pytest.approx(18.1)  # 2x
        det.record_firing("r", 30.0)
        det.record_firing("r", 30.1)
        assert det.quarantined_until("r") == pytest.approx(40.1)  # capped

    def test_validation(self):
        with pytest.raises(ReproError):
            FlapDetector(oscillations=1)
        with pytest.raises(ReproError):
            FlapDetector(window_s=0.0)
