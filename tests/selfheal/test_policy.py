"""Policy vocabulary, validation, and the shipped catalog."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.health.rules import default_rules
from repro.selfheal.policy import (
    ACTION_BACKOFF,
    ACTION_HEAL,
    ACTION_QUARANTINE,
    ACTION_RECONVERT,
    ACTIONS,
    PLANT_ACTIONS,
    ActionRule,
    RemediationPolicy,
    default_policy,
    selfheal_rules,
)


class TestActionRule:
    def test_defaults(self):
        rule = ActionRule(alert="link_hotspot", action=ACTION_RECONVERT)
        assert rule.cooldown_s == 1.0
        assert rule.backoff_factor == 2.0
        assert rule.mode == "global-random"

    def test_unknown_action_rejected(self):
        with pytest.raises(ReproError, match="unknown remediation action"):
            ActionRule(alert="a", action="reboot")

    def test_empty_alert_rejected(self):
        with pytest.raises(ReproError, match="alert name"):
            ActionRule(alert="", action=ACTION_HEAL)

    def test_bad_cooldown_rejected(self):
        with pytest.raises(ReproError, match="cooldown"):
            ActionRule(alert="a", action=ACTION_HEAL, cooldown_s=-1.0)
        with pytest.raises(ReproError, match="backoff_factor"):
            ActionRule(alert="a", action=ACTION_HEAL, backoff_factor=0.5)
        with pytest.raises(ReproError, match="max_cooldown_s"):
            ActionRule(alert="a", action=ACTION_HEAL,
                       cooldown_s=5.0, max_cooldown_s=1.0)

    def test_plant_actions_subset(self):
        assert set(PLANT_ACTIONS) < set(ACTIONS)
        assert ACTION_QUARANTINE not in PLANT_ACTIONS
        assert ACTION_BACKOFF not in PLANT_ACTIONS


class TestRemediationPolicy:
    def test_for_alert_lookup(self):
        rule = ActionRule(alert="link_hotspot", action=ACTION_RECONVERT)
        policy = RemediationPolicy(rules=(rule,))
        assert policy.for_alert("link_hotspot") is rule
        assert policy.for_alert("unmapped") is None

    def test_duplicate_alert_rejected(self):
        with pytest.raises(ReproError, match="duplicate"):
            RemediationPolicy(rules=(
                ActionRule(alert="a", action=ACTION_HEAL),
                ActionRule(alert="a", action=ACTION_RECONVERT),
            ))

    def test_guard_knobs_validated(self):
        with pytest.raises(ReproError, match="hysteresis"):
            RemediationPolicy(hysteresis_s=-0.1)
        with pytest.raises(ReproError, match="budget_capacity"):
            RemediationPolicy(budget_capacity=0)
        with pytest.raises(ReproError, match="flap_oscillations"):
            RemediationPolicy(flap_oscillations=1)

    def test_describe_names_mappings(self):
        policy = default_policy()
        text = policy.describe()
        assert "link_hotspot->reconvert" in text
        assert "budget 8" in text


class TestShippedCatalog:
    def test_every_rule_validates(self):
        policy = default_policy()
        assert len(policy.rules) == 6
        assert all(r.action in ACTIONS for r in policy.rules)

    def test_catalog_covers_health_rules(self):
        """Every shipped health alert has a mapped remediation."""
        policy = default_policy()
        known = {r.name for r in default_rules()}
        known |= {r.name for r in selfheal_rules()}
        for rule in policy.rules:
            assert rule.alert in known

    def test_link_failure_rule_probe(self):
        (rule,) = selfheal_rules()
        assert rule.name == "link_failure"
        assert rule.probe == "conversion.dark_open"
        assert rule.severity == "critical"
