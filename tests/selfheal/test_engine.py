"""Remediation engine: guard chain, cause linkage, deterministic replay."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import pytest

from repro.errors import ReproError
from repro.obs.contract import check_event
from repro.selfheal.engine import (
    SUPPRESS_BUDGET,
    SUPPRESS_COOLDOWN,
    SUPPRESS_FLAP,
    SUPPRESS_HOLD,
    ActionOutcome,
    Executor,
    PlanOnlyExecutor,
    RemediationEngine,
    new_selfheal_aggregator,
    replay,
)
from repro.selfheal.policy import (
    ACTION_HEAL,
    ACTION_QUARANTINE,
    ACTION_RECONVERT,
    ActionRule,
    RemediationPolicy,
)

from .conftest import link_sample


@dataclass
class FakeAggregator:
    """Just the surface the engine polls: an alert log + trace clock."""

    t: float = 0.0
    log: List[Dict[str, object]] = field(default_factory=list)

    def fire(self, rule: str, t: float) -> None:
        self.log.append({"event": "alert_firing", "rule": rule, "t": t})
        self.t = max(self.t, t)

    def resolve(self, rule: str, t: float) -> None:
        self.log.append({"event": "alert_resolved", "rule": rule, "t": t})
        self.t = max(self.t, t)


def make_fake():
    return FakeAggregator()


def policy_of(*rules: ActionRule, **kwargs) -> RemediationPolicy:
    return RemediationPolicy(rules=tuple(rules), **kwargs)


HOTSPOT = ActionRule(alert="hot", action=ACTION_RECONVERT, cooldown_s=1.0)


class FailingExecutor(Executor):
    def perform(self, action, *, rule, t):
        return ActionOutcome(ok=False, detail="plant said no")


class RaisingExecutor(Executor):
    def perform(self, action, *, rule, t):
        raise ReproError("executor blew up")


class TestGuardChain:
    def test_hysteresis_window_defers_action(self):
        engine = RemediationEngine(policy=policy_of(HOTSPOT,
                                                    hysteresis_s=0.25))
        agg = make_fake()
        agg.fire("hot", 0.0)
        agg.t = 0.1
        assert engine.poll(agg) == []        # inside the window
        agg.t = 0.3
        entries = engine.poll(agg)
        assert [e.status for e in entries] == ["planned", "started",
                                               "succeeded"]

    def test_breach_clearing_inside_hysteresis_never_acts(self):
        engine = RemediationEngine(policy=policy_of(HOTSPOT,
                                                    hysteresis_s=0.5))
        agg = make_fake()
        agg.fire("hot", 0.0)
        agg.resolve("hot", 0.2)
        agg.t = 2.0
        assert engine.poll(agg) == []
        assert len(engine.ledger) == 0

    def test_unmapped_alert_observed_not_acted(self):
        engine = RemediationEngine(policy=policy_of(HOTSPOT))
        agg = make_fake()
        agg.fire("mystery", 0.0)
        agg.t = 5.0
        assert engine.poll(agg) == []

    def test_flap_quarantine_suppresses(self):
        policy = policy_of(HOTSPOT, flap_oscillations=2, flap_window_s=5.0,
                           quarantine_s=10.0, hysteresis_s=0.0)
        engine = RemediationEngine(policy=policy)
        agg = make_fake()
        agg.fire("hot", 0.0)
        agg.resolve("hot", 0.4)
        agg.fire("hot", 0.8)                 # 2nd firing in window: flap
        agg.t = 1.0
        entries = engine.poll(agg)
        assert [e.status for e in entries] == ["planned", "suppressed"]
        assert entries[1].reason == SUPPRESS_FLAP
        # and the engine does not spam: retry deferred to quarantine end
        agg.t = 2.0
        assert engine.poll(agg) == []
        agg.t = 11.0                          # quarantine (0.8+10) lifted
        assert [e.status for e in engine.poll(agg)][-1] == "succeeded"

    def test_global_hold_suppresses_plant_actions(self):
        storm = ActionRule(alert="storm", action=ACTION_QUARANTINE,
                           cooldown_s=1.0)
        policy = policy_of(HOTSPOT, storm, hysteresis_s=0.0,
                           quarantine_s=10.0)
        engine = RemediationEngine(policy=policy)
        agg = make_fake()
        agg.fire("storm", 0.0)
        agg.t = 1.0
        entries = engine.poll(agg)
        assert entries[-1].status == "succeeded"
        assert engine.hold_until == pytest.approx(11.0)
        # The storm subsides but the hold it installed stays in force.
        agg.resolve("storm", 1.5)
        agg.fire("hot", 2.0)
        agg.t = 3.0
        entries = engine.poll(agg)
        assert entries[-1].status == "suppressed"
        assert entries[-1].reason == SUPPRESS_HOLD
        agg.t = 11.5                          # hold lifted
        assert engine.poll(agg)[-1].status == "succeeded"

    def test_cooldown_suppresses(self):
        engine = RemediationEngine(policy=policy_of(HOTSPOT,
                                                    hysteresis_s=0.0))
        engine.cooldowns.arm("hot", 0.0, base=5.0)
        agg = make_fake()
        agg.fire("hot", 0.0)
        agg.t = 1.0
        entries = engine.poll(agg)
        assert entries[-1].status == "suppressed"
        assert entries[-1].reason == SUPPRESS_COOLDOWN

    def test_budget_exhaustion_suppresses(self):
        a = ActionRule(alert="a", action=ACTION_RECONVERT)
        b = ActionRule(alert="b", action=ACTION_RECONVERT)
        policy = policy_of(a, b, hysteresis_s=0.0, budget_capacity=1,
                           budget_refill_per_s=0.0)
        engine = RemediationEngine(policy=policy)
        agg = make_fake()
        agg.fire("a", 0.0)
        agg.fire("b", 0.0)
        agg.t = 1.0
        entries = engine.poll(agg)
        by_rule = {}
        for e in entries:
            by_rule.setdefault(e.rule, []).append(e.status)
        assert by_rule["a"] == ["planned", "started", "succeeded"]
        assert by_rule["b"] == ["planned", "suppressed"]
        suppressed = [e for e in entries if e.status == "suppressed"]
        assert suppressed[0].reason == SUPPRESS_BUDGET

    def test_resolution_resets_cooldown_ladder(self):
        engine = RemediationEngine(policy=policy_of(HOTSPOT,
                                                    hysteresis_s=0.0))
        agg = make_fake()
        agg.fire("hot", 0.0)
        agg.t = 0.5
        engine.poll(agg)
        assert engine.cooldowns.strikes("hot") == 1
        agg.resolve("hot", 1.0)
        engine.poll(agg)
        assert engine.cooldowns.strikes("hot") == 0


class TestOutcomes:
    def test_failed_action_recorded_with_reason(self):
        engine = RemediationEngine(policy=policy_of(HOTSPOT,
                                                    hysteresis_s=0.0),
                                   executor=FailingExecutor())
        agg = make_fake()
        agg.fire("hot", 0.0)
        agg.t = 1.0
        entries = engine.poll(agg)
        assert entries[-1].status == "failed"
        assert entries[-1].reason == "plant said no"

    def test_raising_executor_becomes_failed_entry(self):
        engine = RemediationEngine(policy=policy_of(HOTSPOT,
                                                    hysteresis_s=0.0),
                                   executor=RaisingExecutor())
        agg = make_fake()
        agg.fire("hot", 0.0)
        agg.t = 1.0
        assert engine.poll(agg)[-1].status == "failed"

    def test_failure_still_arms_cooldown(self):
        """A failing repair must not be hammered any faster."""
        engine = RemediationEngine(policy=policy_of(HOTSPOT,
                                                    hysteresis_s=0.0),
                                   executor=FailingExecutor())
        agg = make_fake()
        agg.fire("hot", 0.0)
        agg.t = 1.0
        engine.poll(agg)
        agg.t = 1.5                           # inside the 1 s cooldown
        assert engine.poll(agg) == []


class TestReplay:
    def test_hotspot_trace_plans_reconversion(self, hotspot_lines):
        agg, engine = replay(hotspot_lines)
        succeeded = engine.ledger.by_status("succeeded")
        assert succeeded
        assert engine.ledger.succeeded_actions() == ["reconvert"]
        assert all(e.rule == "link_hotspot" for e in succeeded)

    def test_every_action_links_to_a_real_alert(self, hotspot_lines):
        agg, engine = replay(hotspot_lines)
        fired = {(str(e["rule"]), float(e["t"]))  # type: ignore[arg-type]
                 for e in agg.log if e.get("event") == "alert_firing"}
        assert fired
        for entry in engine.ledger.entries:
            assert (entry.rule, entry.alert_t) in fired

    def test_double_replay_byte_identical(self, hotspot_lines):
        _, first = replay(hotspot_lines)
        _, second = replay(hotspot_lines)
        assert first.ledger.to_json() == second.ledger.to_json()

    def test_failure_trace_plans_heal(self, failure_lines):
        agg, engine = replay(failure_lines)
        assert ACTION_HEAL in engine.ledger.succeeded_actions()
        assert agg.dark_open                 # window still open at finish

    def test_plan_only_executor_records_calls(self, hotspot_lines):
        executor = PlanOnlyExecutor()
        _, engine = replay(hotspot_lines, executor=executor)
        assert executor.performed
        action, rule, t = executor.performed[0]
        assert action == ACTION_RECONVERT
        assert rule == "link_hotspot"

    def test_bad_json_raises(self):
        with pytest.raises(ReproError, match="line 2"):
            replay([link_sample(0.0, "a->b", 0.5), "{nope"])

    def test_wire_events_schema_valid(self, memory_sink, hotspot_lines):
        replay(hotspot_lines)
        names = [e["name"] for e in memory_sink.events
                 if str(e.get("name", "")).startswith("selfheal.")]
        assert "selfheal.action_planned" in names
        assert "selfheal.action_started" in names
        assert "selfheal.action_succeeded" in names
        for event in memory_sink.events:
            assert check_event(event) == []


class TestAggregatorWiring:
    def test_selfheal_aggregator_has_link_failure_rule(self):
        agg = new_selfheal_aggregator()
        assert "link_failure" in agg.rules.states
        assert "link_hotspot" in agg.rules.states
