"""Remediation ledger: append-only audit with deterministic export."""

from __future__ import annotations

import json

from repro.selfheal.ledger import (
    SCHEMA,
    STATUS_SUCCEEDED,
    STATUSES,
    RemediationLedger,
)


def sample_ledger():
    ledger = RemediationLedger()
    ledger.add(t=1.0, status="planned", action="reconvert",
               rule="link_hotspot", alert_t=0.5)
    ledger.add(t=1.0, status="started", action="reconvert",
               rule="link_hotspot", alert_t=0.5)
    ledger.add(t=1.0, status="succeeded", action="reconvert",
               rule="link_hotspot", alert_t=0.5, latency_s=0.09,
               detail="3 batches")
    ledger.add(t=2.0, status="suppressed", action="heal",
               rule="link_failure", alert_t=1.8, reason="cooldown")
    return ledger


class TestAppend:
    def test_seq_is_append_order(self):
        ledger = sample_ledger()
        assert [e.seq for e in ledger.entries] == [0, 1, 2, 3]
        assert len(ledger) == 4

    def test_counts_cover_all_statuses(self):
        counts = sample_ledger().counts()
        assert set(counts) == set(STATUSES)
        assert counts["succeeded"] == 1
        assert counts["failed"] == 0

    def test_by_status_and_succeeded_actions(self):
        ledger = sample_ledger()
        assert len(ledger.by_status(STATUS_SUCCEEDED)) == 1
        assert ledger.succeeded_actions() == ["reconvert"]

    def test_cause_linkage_carried(self):
        entry = sample_ledger().entries[2]
        assert entry.rule == "link_hotspot"
        assert entry.alert_t == 0.5


class TestExport:
    def test_json_deterministic(self):
        assert sample_ledger().to_json() == sample_ledger().to_json()

    def test_json_schema_and_shape(self):
        payload = json.loads(sample_ledger().to_json())
        assert payload["schema"] == SCHEMA
        assert len(payload["entries"]) == 4
        assert payload["counts"]["suppressed"] == 1
        assert sample_ledger().to_json().endswith("\n")

    def test_nan_scrubbed_to_null(self):
        ledger = RemediationLedger()
        ledger.add(t=0.0, status="succeeded", action="heal", rule="r",
                   alert_t=0.0, latency_s=float("nan"))
        payload = json.loads(ledger.to_json())
        assert payload["entries"][0]["latency_s"] is None

    def test_render_text(self):
        text = sample_ledger().render_text()
        assert "remediation ledger" in text
        assert "latency 0.090s" in text
        assert "cooldown" in text
        assert "4 ledger entries" in text

    def test_empty_summary(self):
        assert RemediationLedger().summary() == "0 ledger entries: empty"
