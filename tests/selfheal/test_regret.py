"""MTTR/regret report: the closed loop must beat the no-op baseline."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.selfheal.regret import ARMS, run_regret


@pytest.fixture(scope="module")
def report():
    return run_regret(k=4, seed=7, duration=12.0, episodes=2)


class TestRegret:
    def test_all_arms_present(self, report):
        assert tuple(sorted(report.arms)) == tuple(sorted(ARMS))

    def test_closed_beats_noop(self, report):
        """The PR's acceptance gate: strictly better on both axes."""
        assert report.closed_beats_noop
        noop, closed = report.arms["noop"], report.arms["closed"]
        assert closed.time_in_alert_s < noop.time_in_alert_s
        assert closed.mttr_s < noop.mttr_s

    def test_oracle_lower_bounds_closed(self, report):
        oracle, closed = report.arms["oracle"], report.arms["closed"]
        assert oracle.time_in_alert_s <= closed.time_in_alert_s
        assert oracle.mttr_s <= closed.mttr_s

    def test_closed_loop_heals_the_fault(self, report):
        assert report.arms["closed"].stranded_servers == 0
        assert report.arms["noop"].stranded_servers > 0

    def test_ledger_links_every_action(self, report):
        assert len(report.ledger) > 0
        for entry in report.ledger.entries:
            assert entry.rule
            assert entry.alert_t >= 0.0

    def test_regret_versus_oracle(self, report):
        reg = report.regret()
        assert reg["time_in_alert_s"] >= 0.0
        assert reg["mttr_s"] >= 0.0

    def test_table_renders(self, report):
        text = report.table()
        for arm in ARMS:
            assert arm in text
        assert "closed loop beats no-op: yes" in text

    def test_deterministic_for_seed(self, report):
        again = run_regret(k=4, seed=7, duration=12.0, episodes=2)
        assert again.table() == report.table()
        assert again.ledger.to_json() == report.ledger.to_json()

    def test_validation(self):
        with pytest.raises(ReproError):
            run_regret(k=3)
        with pytest.raises(ReproError):
            run_regret(k=4, duration=1.0)
