"""CLI surface: flattree heal (replay, follow, regret, soak), end to end."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture()
def trace_path(tmp_path, hotspot_lines):
    path = tmp_path / "trace.jsonl"
    path.write_text("\n".join(hotspot_lines) + "\n", encoding="utf-8")
    return path


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestHealReplay:
    def test_replay_prints_ledger(self, capsys, trace_path):
        code, out = run_cli(capsys, "heal", str(trace_path))
        assert code == 0
        assert "remediation ledger" in out
        assert "reconvert" in out
        assert "link_hotspot" in out

    def test_json_output_is_deterministic(self, capsys, trace_path):
        code, out1 = run_cli(capsys, "heal", str(trace_path), "--json")
        assert code == 0
        _, out2 = run_cli(capsys, "heal", str(trace_path), "--json")
        assert out1 == out2
        assert json.loads(out1)["schema"] == "flattree.selfheal/1"

    def test_expect_matching_actions(self, capsys, trace_path):
        code, _ = run_cli(capsys, "heal", str(trace_path),
                          "--expect", "reconvert")
        assert code == 0

    def test_expect_mismatch_exits_one(self, capsys, trace_path):
        code, _ = run_cli(capsys, "heal", str(trace_path),
                          "--expect", "heal")
        assert code == 1

    def test_out_writes_ledger_artifact(self, capsys, trace_path,
                                        tmp_path):
        out_path = tmp_path / "HEAL_LEDGER.json"
        code, _ = run_cli(capsys, "heal", str(trace_path),
                          "--out", str(out_path))
        assert code == 0
        body = json.loads(out_path.read_text(encoding="utf-8"))
        assert body["counts"]["succeeded"] >= 1

    def test_byte_identical_artifacts(self, capsys, trace_path, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        run_cli(capsys, "heal", str(trace_path), "--out", str(a))
        run_cli(capsys, "heal", str(trace_path), "--out", str(b))
        assert a.read_bytes() == b.read_bytes()

    def test_missing_trace_exits_two(self, capsys, tmp_path):
        code, _ = run_cli(capsys, "heal", str(tmp_path / "nope.jsonl"))
        assert code == 2

    def test_no_trace_and_no_mode_exits_two(self, capsys):
        code, _ = run_cli(capsys, "heal")
        assert code == 2


class TestHealFollow:
    def test_follow_bounded_by_max_polls(self, capsys, trace_path):
        code, out = run_cli(capsys, "heal", str(trace_path), "--follow",
                            "--poll", "0.01", "--max-polls", "3")
        assert code == 0
        assert "remediation ledger" in out


class TestHealRegret:
    def test_regret_gate_passes(self, capsys):
        code, out = run_cli(capsys, "heal", "--regret", "--k", "4",
                            "--seed", "7")
        assert code == 0
        assert "closed loop beats no-op: yes" in out


class TestHealSoak:
    def test_soak_heals_and_exits_zero(self, capsys):
        code, out = run_cli(capsys, "heal", "--soak", "--k", "4",
                            "--flows", "12", "--seed", "3")
        assert code == 0
        assert "repair: loop healed" in out


class TestInfo:
    def test_info_mentions_selfheal(self, capsys):
        code, out = run_cli(capsys, "info")
        assert code == 0
        assert "selfheal:" in out
        assert "flattree heal" in out
