"""SelfHealLoop thread hygiene: tailing, teardown, crash containment."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ReproError
from repro.selfheal.engine import RemediationEngine
from repro.selfheal.loop import SelfHealLoop

from .conftest import link_sample


def write_trace(path, lines):
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def no_selfheal_threads():
    return not any(t.name == "repro-selfheal-loop" and t.is_alive()
                   for t in threading.enumerate())


class TestTailing:
    def test_replays_existing_file(self, tmp_path, hotspot_lines):
        # Only the burning half of the trace: the loop tails the whole
        # file in one batch, and an alert must still be firing at poll
        # time for the engine to act on it.
        burning = hotspot_lines[:240]
        trace = tmp_path / "trace.jsonl"
        write_trace(trace, burning)
        loop = SelfHealLoop(str(trace), poll_s=0.01, max_polls=3)
        loop.start()
        assert loop.finished.wait(10.0)
        loop.stop()
        assert loop.lines_read == len(burning)
        assert loop.engine.ledger.succeeded_actions() == ["reconvert"]
        assert loop.error is None

    def test_bad_lines_counted_not_fatal(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        write_trace(trace, [link_sample(0.0, "a->b", 0.5), "{nope", ""])
        with SelfHealLoop(str(trace), poll_s=0.01, max_polls=2) as loop:
            assert loop.finished.wait(10.0)
        assert loop.bad_lines == 1
        assert loop.lines_read == 2  # blank line skipped entirely

    def test_missing_file_is_an_empty_poll(self, tmp_path):
        loop = SelfHealLoop(str(tmp_path / "never.jsonl"),
                            poll_s=0.01, max_polls=2)
        loop.start()
        assert loop.finished.wait(10.0)
        loop.stop()
        assert loop.empty_polls >= 2
        assert loop.lines_read == 0

    def test_rejects_bad_poll_interval(self):
        with pytest.raises(ReproError, match="poll_s"):
            SelfHealLoop("x.jsonl", poll_s=0.0)


class TestHygiene:
    def test_context_manager_stops_thread_on_body_exception(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        write_trace(trace, [link_sample(0.0, "a->b", 0.5)])
        with pytest.raises(RuntimeError, match="boom"):
            with SelfHealLoop(str(trace), poll_s=0.01):
                raise RuntimeError("boom")
        assert no_selfheal_threads()

    def test_stop_is_idempotent(self, tmp_path):
        loop = SelfHealLoop(str(tmp_path / "t.jsonl"), poll_s=0.01)
        loop.start()
        loop.stop()
        loop.stop()  # second stop is a no-op, not an error
        assert no_selfheal_threads()

    def test_cannot_restart(self, tmp_path):
        loop = SelfHealLoop(str(tmp_path / "t.jsonl"), poll_s=0.01,
                            max_polls=1)
        loop.start()
        with pytest.raises(ReproError, match="already started"):
            loop.start()
        loop.stop()

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning")
    def test_crashing_engine_recorded_and_loop_finalizes(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        write_trace(trace, [link_sample(0.0, "a->b", 0.5)])

        class BrokenEngine(RemediationEngine):
            calls = 0

            def poll(self, aggregator):
                # First poll (the tail batch) explodes; the finally
                # block's last poll must still run without masking it.
                BrokenEngine.calls += 1
                if BrokenEngine.calls == 1:
                    raise RuntimeError("engine crashed")
                return []

        loop = SelfHealLoop(str(trace), poll_s=0.01,
                            engine=BrokenEngine())
        loop.start()
        assert loop.finished.wait(10.0)  # finalized despite the crash
        assert isinstance(loop.error, RuntimeError)
        loop.stop()
        assert no_selfheal_threads()
