"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestFigures:
    def test_fig5(self, capsys):
        code, out = run_cli(capsys, "fig5", "--ks", "4", "6")
        assert code == 0
        assert "fig5" in out
        assert "fat-tree" in out and "random graph" in out

    def test_fig6(self, capsys):
        code, out = run_cli(capsys, "fig6", "--ks", "4")
        assert code == 0
        assert "two-stage random graph" in out

    def test_fig7_with_solver(self, capsys):
        code, out = run_cli(
            capsys, "fig7", "--ks", "4", "--solver", "exact"
        )
        assert code == 0
        assert "throughput" in out

    def test_fig8(self, capsys):
        code, out = run_cli(capsys, "fig8", "--ks", "4")
        assert code == 0
        assert "flat-tree locality" in out


class TestHybrid:
    def test_hybrid_runs(self, capsys):
        code, out = run_cli(
            capsys, "hybrid", "--k", "6", "--fractions", "0.5"
        )
        assert code == 0
        assert "global zone" in out
        assert "combined" in out


class TestProfile:
    def test_profile_prints_grid(self, capsys):
        code, out = run_cli(capsys, "profile", "--k", "8")
        assert code == 0
        assert "<-- minimum" in out


class TestConvert:
    @pytest.mark.parametrize(
        "mode", ["clos", "global-random", "local-random"]
    )
    def test_convert_modes(self, capsys, mode):
        code, out = run_cli(capsys, "convert", "--k", "8", "--mode", mode)
        assert code == 0
        assert "plan:" in out
        assert "network:" in out

    def test_convert_shows_server_distribution(self, capsys):
        _code, out = run_cli(
            capsys, "convert", "--k", "8", "--mode", "global-random"
        )
        assert "core" in out


class TestCompare:
    def test_compare_table(self, capsys):
        code, out = run_cli(capsys, "compare", "--k", "4")
        assert code == 0
        for name in ("fat-tree", "flat-tree[global]", "two-stage"):
            assert name in out
        assert "avg path length" in out


class TestCost:
    def test_cost_table(self, capsys):
        code, out = run_cli(capsys, "cost", "--ks", "8", "16")
        assert code == 0
        assert "rel. cost" in out
        assert "0.070" in out


class TestSchedule:
    @pytest.mark.parametrize("tech", ["mems", "mzi", "packet"])
    def test_schedule_per_technology(self, capsys, tech):
        code, out = run_cli(
            capsys, "schedule", "--k", "8", "--technology", tech
        )
        assert code == 0
        assert "batches" in out


class TestExport:
    def test_dot(self, capsys):
        code, out = run_cli(capsys, "export", "--k", "4", "--format", "dot")
        assert code == 0
        assert out.startswith("graph")

    def test_json_parses(self, capsys):
        import json

        code, out = run_cli(capsys, "export", "--k", "4", "--format", "json")
        assert code == 0
        data = json.loads(out)
        assert len(data["switches"]) == 20

    def test_edges(self, capsys):
        code, out = run_cli(capsys, "export", "--k", "4", "--format", "edges")
        assert code == 0
        assert len(out.strip().splitlines()) == 32


class TestFct:
    def test_fct_table(self, capsys):
        code, out = run_cli(capsys, "fct", "--ks", "4", "--flows", "12")
        assert code == 0
        assert "clos" in out and "global-random" in out

    def test_fct_monitored_conversion(self, capsys):
        code, out = run_cli(
            capsys, "fct", "--ks", "4", "--flows", "12", "--monitor"
        )
        assert code == 0
        assert "conversion at t=" in out
        assert "downtime ledger" in out
        assert "disruption:" in out
        assert "traversed dark links" in out

    def test_fct_monitor_technology(self, capsys):
        code, out = run_cli(
            capsys, "fct", "--ks", "4", "--flows", "12", "--monitor",
            "--technology", "mzi",
        )
        assert code == 0
        assert "Mach-Zehnder" in out


class TestMonitor:
    def test_alltoall_heatmap_and_hotspots(self, capsys):
        code, out = run_cli(
            capsys, "monitor", "--k", "4", "--pattern", "alltoall",
            "--flows", "24", "--top", "4",
        )
        assert code == 0
        assert "utilization % over" in out
        assert "links by peak utilization" in out
        assert "imbalance: gini" in out
        assert "->" in out

    def test_hotspot_pattern_with_mode(self, capsys):
        code, out = run_cli(
            capsys, "monitor", "--k", "4", "--pattern", "hotspot",
            "--flows", "8", "--mode", "global-random",
        )
        assert code == 0
        assert "mean FCT" in out

    def test_interval_and_retention_flags(self, capsys):
        code, out = run_cli(
            capsys, "monitor", "--k", "4", "--pattern", "hotspot",
            "--flows", "8", "--interval", "0.5", "--retention", "8",
        )
        assert code == 0
        assert "retention 8" in out


class TestDownscale:
    def test_downscale_runs(self, capsys):
        code, out = run_cli(
            capsys, "downscale", "--k", "4", "--floor", "0.5",
            "--flows", "2",
        )
        assert code == 0
        assert "baseline" in out


class TestReport:
    def test_report_writes_markdown(self, capsys, tmp_path):
        out = tmp_path / "r.md"
        code, text = run_cli(
            capsys, "report", "--out", str(out), "--scale", "quick"
        )
        assert code == 0
        assert "wrote" in text
        assert out.read_text().startswith("# Flat-tree reproduction report")


class TestUsage:
    def test_no_args_prints_help(self, capsys):
        code = main([])
        assert code == 2
        assert "experiments" in capsys.readouterr().out

    def test_bad_mode_rejected(self):
        with pytest.raises(SystemExit):
            main(["convert", "--k", "8", "--mode", "sideways"])


class TestVersionAndInfo:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_info_lists_versions_and_sinks(self, capsys):
        import networkx

        import repro

        code, out = run_cli(capsys, "info")
        assert code == 0
        assert f"repro {repro.__version__}" in out
        assert f"networkx {networkx.__version__}" in out
        assert "telemetry: disabled" in out

    def test_info_lists_monitor_capabilities(self, capsys):
        _code, out = run_cli(capsys, "info")
        assert "monitor: events link_sample/link_down/link_up" in out
        assert "retention 1024" in out

    def test_info_reports_enabled_sink(self, capsys):
        code, out = run_cli(capsys, "--telemetry", "info")
        assert code == 0
        assert "telemetry: enabled -> stderr" in out

    def test_info_reports_lint_capability(self, capsys):
        from tools.flatlint import MYPY_STRICT_PACKAGES, all_rules

        code, out = run_cli(capsys, "info")
        assert code == 0
        lint_lines = [l for l in out.splitlines() if l.startswith("lint:")]
        assert len(lint_lines) == 1
        line = lint_lines[0]
        assert f"flatlint {len(all_rules())} rules" in line
        for rule in all_rules():
            assert rule.code in line
        for package in MYPY_STRICT_PACKAGES:
            assert package in line


class TestBenchCommand:
    def test_info_reports_perf_capability(self, capsys):
        code, out = run_cli(capsys, "info")
        assert code == 0
        assert "perf: span-tree profiler" in out
        assert "BENCH_*.json" in out
        assert "perfreport diff" in out
        assert "flattree trend" in out

    def test_bench_missing_dir_exits_two(self, capsys, tmp_path):
        code = main(["bench", "--benchmarks", str(tmp_path / "nope")])
        captured = capsys.readouterr()
        assert code == 2
        assert "no benchmark directory" in captured.err

    def test_bench_records_session(self, capsys, tmp_path):
        import json

        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "test_bench_tiny.py").write_text(
            "def test_bench_tiny(benchmark):\n"
            "    benchmark.pedantic(sum, args=(range(100),),\n"
            "                       rounds=1, iterations=1)\n"
        )
        out_path = tmp_path / "BENCH_unit.json"
        code, out = run_cli(
            capsys, "bench", "--benchmarks", str(bench_dir),
            "--out", str(out_path), "--label", "unit",
        )
        assert code == 0
        assert "wrote" in out
        session = json.loads(out_path.read_text())
        assert session["schema"] == 1
        assert session["label"] == "unit"
        entry = session["benchmarks"]["test_bench_tiny.py::test_bench_tiny"]
        assert entry["wall_s"] >= 0
        assert entry["metrics"] == {}
        assert session["environment"]["python"]

    def _write_trend_sessions(self, tmp_path, last_wall):
        import json

        environment = {
            "python": "3.12.0", "implementation": "CPython",
            "platform": "Linux-test", "machine": "x86_64", "cpu_count": 8,
            "networkx": "3.3", "numpy": None, "scipy": None,
            "repro": "1.0.0", "git_commit": None, "git_dirty": None,
        }
        walls = (0.50, 0.52, 0.48, last_wall)
        for seq, wall in enumerate(walls, start=1):
            session = {
                "schema": 1, "label": "t", "ts": 1700000000.0 + seq,
                "environment": environment,
                "benchmarks": {"a.py::t": {
                    "wall_s": wall, "mean_s": wall, "stddev_s": 0.0,
                    "rounds": 1, "metrics": {}}},
            }
            (tmp_path / f"BENCH_{seq}.json").write_text(
                json.dumps(session), encoding="utf-8")

    def test_trend_flags_a_step_and_writes_the_report(self, capsys,
                                                      tmp_path):
        import json

        self._write_trend_sessions(tmp_path, last_wall=5.0)
        report = tmp_path / "TREND_REPORT.json"
        code, out = run_cli(capsys, "trend", "--root", str(tmp_path),
                            "--out", str(report))
        assert code == 1
        assert "step-up" in out
        document = json.loads(report.read_text(encoding="utf-8"))
        assert document["regressions"] == 1

    def test_trend_flat_trajectory_exits_zero(self, capsys, tmp_path):
        self._write_trend_sessions(tmp_path, last_wall=0.51)
        code, out = run_cli(capsys, "trend", "--root", str(tmp_path))
        assert code == 0
        assert "0 regression(s)" in out


class TestTelemetry:
    def test_disabled_run_prints_no_telemetry(self, capsys):
        _code, out = run_cli(capsys, "cost", "--ks", "8")
        assert "== telemetry ==" not in out

    def test_table_printed_and_state_restored(self, capsys):
        from repro import obs

        code, out = run_cli(capsys, "--telemetry", "profile", "--k", "4")
        assert code == 0
        assert "== telemetry ==" in out
        assert "core.profiling.candidates" in out
        assert "span.cli_s" in out
        assert not obs.enabled()

    def test_jsonl_events_valid(self, capsys, tmp_path):
        import json

        path = tmp_path / "events.jsonl"
        code, out = run_cli(
            capsys, f"--telemetry={path}", "convert", "--k", "4",
            "--mode", "global-random",
        )
        assert code == 0
        assert "== telemetry ==" in out
        lines = path.read_text().strip().splitlines()
        assert lines
        for line in lines:
            event = json.loads(line)
            assert {"ts", "name", "kind"} <= set(event)
            assert "value" in event or "duration_s" in event
        names = {json.loads(line)["name"] for line in lines}
        assert "cli" in names                    # the top-level span
        assert "apply_layout" in names           # the conversion span
        assert "core.controller.reprogrammed" in names

    def test_monitor_run_exports_valid_link_events(self, capsys, tmp_path):
        import json

        from tools.check_telemetry import check_line

        path = tmp_path / "monitor.jsonl"
        code, _out = run_cli(
            capsys, f"--telemetry={path}", "monitor", "--k", "4",
            "--pattern", "hotspot", "--flows", "8",
        )
        assert code == 0
        lines = path.read_text().strip().splitlines()
        kinds = {json.loads(line)["kind"] for line in lines}
        assert "link_sample" in kinds
        for lineno, line in enumerate(lines, start=1):
            assert check_line(line, lineno) == [], line


class TestChaosCommand:
    def test_chaos_prints_table(self, capsys):
        code, out = run_cli(
            capsys, "chaos", "--k", "4", "--rates", "0", "0.3",
            "--technologies", "mems", "--trials", "2", "--seed", "7",
        )
        assert code == 0
        assert "chaos sweep" in out
        assert "MEMS optical" in out
        assert "success" in out and "rolled_back" in out

    def test_chaos_output_deterministic(self, capsys):
        argv = ("chaos", "--k", "4", "--rates", "0.3",
                "--technologies", "mzi", "--trials", "2", "--seed", "3")
        _code, first = run_cli(capsys, *argv)
        _code, second = run_cli(capsys, *argv)
        assert first == second

    def test_chaos_telemetry_validates(self, capsys, tmp_path):
        from tools.check_telemetry import check_line

        path = tmp_path / "chaos.jsonl"
        code, _out = run_cli(
            capsys, f"--telemetry={path}", "chaos", "--k", "4",
            "--rates", "0.3", "--technologies", "mems",
            "--trials", "2", "--seed", "7",
        )
        assert code == 0
        lines = path.read_text().strip().splitlines()
        assert lines
        for lineno, line in enumerate(lines, start=1):
            assert check_line(line, lineno) == [], line
