"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestFigures:
    def test_fig5(self, capsys):
        code, out = run_cli(capsys, "fig5", "--ks", "4", "6")
        assert code == 0
        assert "fig5" in out
        assert "fat-tree" in out and "random graph" in out

    def test_fig6(self, capsys):
        code, out = run_cli(capsys, "fig6", "--ks", "4")
        assert code == 0
        assert "two-stage random graph" in out

    def test_fig7_with_solver(self, capsys):
        code, out = run_cli(
            capsys, "fig7", "--ks", "4", "--solver", "exact"
        )
        assert code == 0
        assert "throughput" in out

    def test_fig8(self, capsys):
        code, out = run_cli(capsys, "fig8", "--ks", "4")
        assert code == 0
        assert "flat-tree locality" in out


class TestHybrid:
    def test_hybrid_runs(self, capsys):
        code, out = run_cli(
            capsys, "hybrid", "--k", "6", "--fractions", "0.5"
        )
        assert code == 0
        assert "global zone" in out
        assert "combined" in out


class TestProfile:
    def test_profile_prints_grid(self, capsys):
        code, out = run_cli(capsys, "profile", "--k", "8")
        assert code == 0
        assert "<-- minimum" in out


class TestConvert:
    @pytest.mark.parametrize(
        "mode", ["clos", "global-random", "local-random"]
    )
    def test_convert_modes(self, capsys, mode):
        code, out = run_cli(capsys, "convert", "--k", "8", "--mode", mode)
        assert code == 0
        assert "plan:" in out
        assert "network:" in out

    def test_convert_shows_server_distribution(self, capsys):
        _code, out = run_cli(
            capsys, "convert", "--k", "8", "--mode", "global-random"
        )
        assert "core" in out


class TestCompare:
    def test_compare_table(self, capsys):
        code, out = run_cli(capsys, "compare", "--k", "4")
        assert code == 0
        for name in ("fat-tree", "flat-tree[global]", "two-stage"):
            assert name in out
        assert "avg path length" in out


class TestCost:
    def test_cost_table(self, capsys):
        code, out = run_cli(capsys, "cost", "--ks", "8", "16")
        assert code == 0
        assert "rel. cost" in out
        assert "0.070" in out


class TestSchedule:
    @pytest.mark.parametrize("tech", ["mems", "mzi", "packet"])
    def test_schedule_per_technology(self, capsys, tech):
        code, out = run_cli(
            capsys, "schedule", "--k", "8", "--technology", tech
        )
        assert code == 0
        assert "batches" in out


class TestExport:
    def test_dot(self, capsys):
        code, out = run_cli(capsys, "export", "--k", "4", "--format", "dot")
        assert code == 0
        assert out.startswith("graph")

    def test_json_parses(self, capsys):
        import json

        code, out = run_cli(capsys, "export", "--k", "4", "--format", "json")
        assert code == 0
        data = json.loads(out)
        assert len(data["switches"]) == 20

    def test_edges(self, capsys):
        code, out = run_cli(capsys, "export", "--k", "4", "--format", "edges")
        assert code == 0
        assert len(out.strip().splitlines()) == 32


class TestDownscale:
    def test_downscale_runs(self, capsys):
        code, out = run_cli(
            capsys, "downscale", "--k", "4", "--floor", "0.5",
            "--flows", "2",
        )
        assert code == 0
        assert "baseline" in out


class TestReport:
    def test_report_writes_markdown(self, capsys, tmp_path):
        out = tmp_path / "r.md"
        code, text = run_cli(
            capsys, "report", "--out", str(out), "--scale", "quick"
        )
        assert code == 0
        assert "wrote" in text
        assert out.read_text().startswith("# Flat-tree reproduction report")


class TestUsage:
    def test_no_args_prints_help(self, capsys):
        code = main([])
        assert code == 2
        assert "experiments" in capsys.readouterr().out

    def test_bad_mode_rejected(self):
        with pytest.raises(SystemExit):
            main(["convert", "--k", "8", "--mode", "sideways"])
