"""Unit and property tests for the Garg-Könemann approximation."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.mcf.commodities import Commodity, build_flow_problem
from repro.mcf.approx import solve_concurrent_approx
from repro.mcf.exact import solve_concurrent_exact
from repro.topology.elements import Network, PlainSwitch
from repro.topology.fattree import build_fat_tree
from repro.topology.jellyfish import build_jellyfish_like_fat_tree


class TestBasics:
    def test_epsilon_validated(self, triangle):
        problem = build_flow_problem(triangle, [Commodity(0, 1)])
        with pytest.raises(SolverError):
            solve_concurrent_approx(problem, epsilon=0.0)
        with pytest.raises(SolverError):
            solve_concurrent_approx(problem, epsilon=1.0)

    def test_single_path(self, path3):
        problem = build_flow_problem(path3, [Commodity(0, 1)])
        lam = solve_concurrent_approx(problem, epsilon=0.05).throughput
        assert lam == pytest.approx(1.0, rel=0.06)

    def test_disconnected_gives_zero(self):
        net = Network("disc")
        a, b, c = PlainSwitch(0), PlainSwitch(1), PlainSwitch(2)
        for node in (a, b, c):
            net.add_switch(node, 4)
        net.add_cable(a, b)
        net.add_server(0, a)
        net.add_server(1, c)
        problem = build_flow_problem(net, [Commodity(0, 1)])
        assert solve_concurrent_approx(problem).throughput == 0.0

    def test_max_phases_caps_work(self, triangle):
        problem = build_flow_problem(triangle, [Commodity(0, 1)])
        lam = solve_concurrent_approx(
            problem, epsilon=0.05, max_phases=1
        ).throughput
        # Still feasible (certified), possibly below optimal.
        assert 0.0 < lam <= 2.0 + 1e-9


class TestAgainstExact:
    def test_fat_tree_broadcast(self):
        net = build_fat_tree(4)
        servers = sorted(net.servers())
        commodities = [Commodity(servers[0], s) for s in servers[1:]]
        problem = build_flow_problem(net, commodities)
        exact = solve_concurrent_exact(problem).throughput
        approx = solve_concurrent_approx(problem, epsilon=0.05).throughput
        assert approx <= exact + 1e-9
        assert approx >= 0.9 * exact

    def test_multi_group(self, triangle):
        problem = build_flow_problem(
            triangle,
            [Commodity(0, 1), Commodity(1, 2), Commodity(2, 0)],
        )
        exact = solve_concurrent_exact(problem).throughput
        approx = solve_concurrent_approx(problem, epsilon=0.05).throughput
        assert approx <= exact + 1e-9
        assert approx >= 0.9 * exact


@settings(max_examples=10)
@given(st.integers(min_value=0, max_value=30))
def test_property_approx_feasible_and_tight(seed):
    """Certified λ never exceeds the LP optimum and stays within 1 - ε."""
    rng = random.Random(seed)
    net = build_jellyfish_like_fat_tree(4, rng)
    servers = sorted(net.servers())
    commodities = []
    for _ in range(6):
        a, b = rng.sample(servers, 2)
        if net.server_switch(a) != net.server_switch(b):
            commodities.append(Commodity(a, b))
    if not commodities:
        return
    problem = build_flow_problem(net, commodities)
    exact = solve_concurrent_exact(problem).throughput
    approx = solve_concurrent_approx(problem, epsilon=0.1).throughput
    assert approx <= exact + 1e-9
    assert approx >= 0.85 * exact
