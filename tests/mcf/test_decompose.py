"""Unit tests for flow decomposition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SolverError
from repro.mcf.commodities import Commodity, build_flow_problem
from repro.mcf.decompose import (
    decompose_group,
    decompose_solution,
    delivered_per_commodity,
)
from repro.mcf.exact import solve_concurrent_exact
from repro.topology.fattree import build_fat_tree


def solved(net, commodities):
    problem = build_flow_problem(net, commodities)
    result = solve_concurrent_exact(problem, return_flows=True)
    return problem, result


class TestDecomposeSimple:
    def test_single_path(self, path3):
        problem, result = solved(path3, [Commodity(0, 1)])
        paths = decompose_solution(problem, result.flows)
        assert len(paths) == 1
        assert paths[0].amount == pytest.approx(1.0)
        assert len(paths[0].nodes) == 3

    def test_triangle_uses_both_routes(self, triangle):
        problem, result = solved(triangle, [Commodity(0, 1)])
        paths = decompose_solution(problem, result.flows)
        # λ = 2: direct (1.0) + detour (1.0).
        assert sum(p.amount for p in paths) == pytest.approx(2.0)
        hop_counts = sorted(len(p.nodes) - 1 for p in paths)
        assert hop_counts == [1, 2]

    def test_paths_follow_real_arcs(self, triangle):
        problem, result = solved(
            triangle, [Commodity(0, 1), Commodity(1, 2)]
        )
        arc_set = set(zip(problem.arc_src.tolist(), problem.arc_dst.tolist()))
        for path in decompose_solution(problem, result.flows):
            for u, v in zip(path.nodes, path.nodes[1:]):
                assert (u, v) in arc_set


class TestDeliveredAmounts:
    def test_matches_lambda_per_commodity(self):
        net = build_fat_tree(4)
        servers = [0, 5, 9, 15]
        commodities = [Commodity(servers[0], s) for s in servers[1:]]
        problem, result = solved(net, commodities)
        lam = result.throughput
        paths = decompose_solution(problem, result.flows)
        delivered = delivered_per_commodity(paths)
        for group in problem.groups:
            for sink, demand in zip(group.sinks, group.demands):
                got = delivered.get((group.source, int(sink)), 0.0)
                assert got == pytest.approx(lam * demand, rel=1e-4, abs=1e-6)

    def test_decomposed_paths_respect_capacity(self):
        net = build_fat_tree(4)
        commodities = [Commodity(0, 15), Commodity(4, 8), Commodity(12, 2)]
        problem, result = solved(net, commodities)
        paths = decompose_solution(problem, result.flows)
        load = {}
        for path in paths:
            for u, v in zip(path.nodes, path.nodes[1:]):
                load[(u, v)] = load.get((u, v), 0.0) + path.amount
        caps = {
            (int(s), int(d)): c
            for s, d, c in zip(problem.arc_src, problem.arc_dst,
                               problem.arc_cap)
        }
        for arc, used in load.items():
            assert used <= caps[arc] + 1e-6


class TestValidation:
    def test_bad_flow_shape_rejected(self, triangle):
        problem, result = solved(triangle, [Commodity(0, 1)])
        with pytest.raises(SolverError):
            decompose_group(problem, problem.groups[0], np.zeros(3))

    def test_bad_matrix_shape_rejected(self, triangle):
        problem, _result = solved(triangle, [Commodity(0, 1)])
        with pytest.raises(SolverError):
            decompose_solution(problem, np.zeros((5, 5)))

    def test_zero_flow_decomposes_empty(self, triangle):
        problem, _result = solved(triangle, [Commodity(0, 1)])
        paths = decompose_group(
            problem, problem.groups[0], np.zeros(problem.num_arcs)
        )
        assert paths == []
