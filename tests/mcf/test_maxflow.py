"""Unit tests for max-flow helpers and cut bounds."""

from __future__ import annotations

import pytest

from repro.errors import SolverError
from repro.mcf.commodities import Commodity, build_flow_problem
from repro.mcf.maxflow import (
    concurrent_upper_bound,
    single_pair_max_flow,
    sink_cut_bound,
    source_cut_bound,
)
from repro.topology.elements import Network, PlainSwitch
from repro.topology.fattree import build_fat_tree


class TestSinglePairMaxFlow:
    def test_path_bottleneck(self, path3):
        assert single_pair_max_flow(
            path3, PlainSwitch(0), PlainSwitch(2)
        ) == pytest.approx(1.0)

    def test_triangle_two_disjoint_routes(self, triangle):
        assert single_pair_max_flow(
            triangle, PlainSwitch(0), PlainSwitch(1)
        ) == pytest.approx(2.0)

    def test_parallel_cables_add_capacity(self):
        net = Network("p")
        a, b = PlainSwitch(0), PlainSwitch(1)
        net.add_switch(a, 4)
        net.add_switch(b, 4)
        net.add_cable(a, b)
        net.add_cable(a, b)
        net.add_cable(a, b)
        assert single_pair_max_flow(net, a, b) == pytest.approx(3.0)

    def test_fat_tree_edge_to_edge(self):
        """Cross-pod switch pair in fat-tree(4): k/2 uplinks bound flow."""
        net = build_fat_tree(4)
        src = net.server_switch(0)
        dst = net.server_switch(15)
        assert single_pair_max_flow(net, src, dst) == pytest.approx(2.0)

    def test_same_switch_rejected(self, path3):
        with pytest.raises(SolverError):
            single_pair_max_flow(path3, PlainSwitch(0), PlainSwitch(0))


class TestCutBounds:
    def test_source_bound_path(self, path3):
        problem = build_flow_problem(path3, [Commodity(0, 1)])
        assert source_cut_bound(problem) == pytest.approx(1.0)

    def test_sink_bound_aggregates_across_groups(self, triangle):
        # Two demands into server 2's switch: in-capacity 2 / demand 2.
        problem = build_flow_problem(
            triangle, [Commodity(0, 2), Commodity(1, 2)]
        )
        assert sink_cut_bound(problem) == pytest.approx(1.0)

    def test_combined_bound_is_min(self, triangle):
        problem = build_flow_problem(
            triangle, [Commodity(0, 1), Commodity(0, 2)]
        )
        combined = concurrent_upper_bound(problem)
        assert combined == pytest.approx(
            min(source_cut_bound(problem), sink_cut_bound(problem))
        )

    def test_bounds_scale_with_demand(self, path3):
        problem = build_flow_problem(path3, [Commodity(0, 1, demand=4.0)])
        assert source_cut_bound(problem) == pytest.approx(0.25)
