"""Unit tests for commodities, contraction, and aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TrafficError
from repro.mcf.commodities import (
    Commodity,
    build_flow_problem,
    commodity_count,
)
from repro.topology.elements import Network, PlainSwitch


class TestCommodity:
    def test_self_pair_rejected(self):
        with pytest.raises(TrafficError):
            Commodity(1, 1)

    def test_nonpositive_demand_rejected(self):
        with pytest.raises(TrafficError):
            Commodity(0, 1, demand=0.0)
        with pytest.raises(TrafficError):
            Commodity(0, 1, demand=-2.0)


class TestBuildFlowProblem:
    def test_arcs_are_antiparallel_pairs(self, path3):
        problem = build_flow_problem(path3, [Commodity(0, 1)])
        assert problem.num_arcs == 4  # 2 cables x 2 directions
        forward = set(zip(problem.arc_src, problem.arc_dst))
        for u, v in forward:
            assert (v, u) in forward

    def test_capacity_accumulates_parallel(self):
        net = Network("p")
        a, b = PlainSwitch(0), PlainSwitch(1)
        net.add_switch(a, 4)
        net.add_switch(b, 4)
        net.add_cable(a, b)
        net.add_cable(a, b)
        net.add_server(0, a)
        net.add_server(1, b)
        problem = build_flow_problem(net, [Commodity(0, 1)])
        assert set(problem.arc_cap) == {2.0}

    def test_same_switch_commodities_dropped(self, triangle):
        net = triangle
        net.add_server(10, net.server_switch(0))
        problem = build_flow_problem(net, [Commodity(0, 10), Commodity(0, 1)])
        assert commodity_count(problem) == 1

    def test_all_same_switch_raises(self, triangle):
        net = triangle
        net.add_server(10, net.server_switch(0))
        with pytest.raises(TrafficError):
            build_flow_problem(net, [Commodity(0, 10)])

    def test_aggregation_by_source_switch(self, triangle):
        problem = build_flow_problem(
            triangle,
            [Commodity(0, 1), Commodity(0, 2), Commodity(1, 2)],
        )
        assert problem.num_groups == 2
        sources = {g.source for g in problem.groups}
        idx = triangle.switch_index()
        assert sources == {
            idx[triangle.server_switch(0)],
            idx[triangle.server_switch(1)],
        }

    def test_duplicate_demands_sum(self, triangle):
        problem = build_flow_problem(
            triangle, [Commodity(0, 1), Commodity(0, 1, demand=2.0)]
        )
        group = problem.groups[0]
        assert group.total_demand == pytest.approx(3.0)
        assert commodity_count(problem) == 1

    def test_total_demand(self, triangle):
        problem = build_flow_problem(
            triangle, [Commodity(0, 1), Commodity(1, 2, demand=0.5)]
        )
        assert problem.total_demand == pytest.approx(1.5)


class TestReversed:
    def test_arcs_and_demands_reversed(self, path3):
        problem = build_flow_problem(
            path3, [Commodity(0, 1), Commodity(0, 1, demand=1.0)]
        )
        rev = problem.reversed()
        assert rev.num_arcs == problem.num_arcs
        assert np.array_equal(rev.arc_src, problem.arc_dst)
        # The single aggregated demand flips direction.
        assert rev.groups[0].source == int(problem.groups[0].sinks[0])
        assert int(rev.groups[0].sinks[0]) == problem.groups[0].source
        assert rev.total_demand == pytest.approx(problem.total_demand)

    def test_double_reverse_is_identity(self, triangle):
        problem = build_flow_problem(
            triangle, [Commodity(0, 1), Commodity(1, 2), Commodity(2, 0)]
        )
        twice = problem.reversed().reversed()
        assert twice.num_groups == problem.num_groups
        for a, b in zip(problem.groups, twice.groups):
            assert a.source == b.source
            assert np.array_equal(a.sinks, b.sinks)
            assert np.array_equal(a.demands, b.demands)
