"""Unit tests for the exact concurrent-flow LP."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.mcf.commodities import Commodity, FlowProblem, build_flow_problem
from repro.mcf.exact import solve_concurrent_exact
from repro.mcf.maxflow import concurrent_upper_bound, single_pair_max_flow
from repro.topology.elements import Network, PlainSwitch
from repro.topology.fattree import build_fat_tree
from repro.topology.jellyfish import build_jellyfish_like_fat_tree

import numpy as np


def line_network(n, servers_at):
    net = Network("line")
    nodes = [PlainSwitch(i) for i in range(n)]
    for node in nodes:
        net.add_switch(node, 8)
    for a, b in zip(nodes, nodes[1:]):
        net.add_cable(a, b)
    for sid, where in enumerate(servers_at):
        net.add_server(sid, nodes[where])
    return net


class TestKnownOptima:
    def test_single_commodity_path(self):
        net = line_network(3, [0, 2])
        lam = solve_concurrent_exact(
            build_flow_problem(net, [Commodity(0, 1)])
        ).throughput
        assert lam == pytest.approx(1.0)

    def test_two_commodities_share_link(self):
        net = line_network(3, [0, 0, 2])
        problem = build_flow_problem(
            net, [Commodity(0, 2), Commodity(1, 2)]
        )
        lam = solve_concurrent_exact(problem).throughput
        assert lam == pytest.approx(0.5)

    def test_opposite_directions_full_duplex(self):
        """Antiparallel demands do not contend (full-duplex model)."""
        net = line_network(2, [0, 1])
        problem = build_flow_problem(
            net, [Commodity(0, 1), Commodity(1, 0)]
        )
        lam = solve_concurrent_exact(problem).throughput
        assert lam == pytest.approx(1.0)

    def test_triangle_uses_detour(self, triangle):
        """One commodity over a triangle: direct + 2-hop detour = 2.0."""
        problem = build_flow_problem(triangle, [Commodity(0, 1)])
        lam = solve_concurrent_exact(problem).throughput
        assert lam == pytest.approx(2.0)

    def test_demand_scales_inversely(self, triangle):
        problem = build_flow_problem(
            triangle, [Commodity(0, 1, demand=4.0)]
        )
        lam = solve_concurrent_exact(problem).throughput
        assert lam == pytest.approx(0.5)

    def test_disconnected_sink_gives_zero(self):
        net = Network("disc")
        a, b = PlainSwitch(0), PlainSwitch(1)
        c, d = PlainSwitch(2), PlainSwitch(3)
        for node in (a, b, c, d):
            net.add_switch(node, 4)
        net.add_cable(a, b)
        net.add_cable(c, d)
        net.add_server(0, a)
        net.add_server(1, c)
        problem = build_flow_problem(net, [Commodity(0, 1)])
        assert solve_concurrent_exact(problem).throughput == pytest.approx(0.0)

    def test_no_groups_rejected(self, triangle):
        problem = build_flow_problem(triangle, [Commodity(0, 1)])
        empty = FlowProblem(
            num_nodes=problem.num_nodes,
            arc_src=problem.arc_src,
            arc_dst=problem.arc_dst,
            arc_cap=problem.arc_cap,
            groups=[],
        )
        with pytest.raises(SolverError):
            solve_concurrent_exact(empty)


class TestAgainstMaxFlow:
    def test_single_pair_equals_max_flow_fat_tree(self):
        """With one commodity, concurrent flow = max flow."""
        net = build_fat_tree(4)
        src = net.server_switch(0)
        dst = net.server_switch(15)
        problem = build_flow_problem(net, [Commodity(0, 15)])
        lam = solve_concurrent_exact(problem).throughput
        assert lam == pytest.approx(single_pair_max_flow(net, src, dst))

    def test_single_pair_equals_max_flow_jellyfish(self):
        net = build_jellyfish_like_fat_tree(4, random.Random(0))
        servers = sorted(net.servers())
        src_server, dst_server = servers[0], servers[-1]
        if net.server_switch(src_server) == net.server_switch(dst_server):
            pytest.skip("degenerate draw: same-switch pair")
        problem = build_flow_problem(net, [Commodity(src_server, dst_server)])
        lam = solve_concurrent_exact(problem).throughput
        flow = single_pair_max_flow(
            net, net.server_switch(src_server), net.server_switch(dst_server)
        )
        assert lam == pytest.approx(flow, rel=1e-4)


class TestFlowsOutput:
    def test_flows_respect_capacity_and_conservation(self, triangle):
        problem = build_flow_problem(
            triangle, [Commodity(0, 1), Commodity(1, 2)]
        )
        result = solve_concurrent_exact(problem, return_flows=True)
        assert result.flows is not None
        assert result.flows.shape == (problem.num_groups, problem.num_arcs)
        total = result.flows.sum(axis=0)
        assert np.all(total <= problem.arc_cap + 1e-8)
        util = result.utilization(problem)
        assert util.max() <= 1.0 + 1e-8

    def test_utilization_requires_flows(self, triangle):
        problem = build_flow_problem(triangle, [Commodity(0, 1)])
        result = solve_concurrent_exact(problem)
        with pytest.raises(SolverError):
            result.utilization(problem)


@given(st.integers(min_value=0, max_value=50))
def test_property_cut_bound_dominates_exact(seed):
    """Cut-based upper bounds are never below the LP optimum."""
    rng = random.Random(seed)
    net = build_jellyfish_like_fat_tree(4, rng)
    servers = sorted(net.servers())
    commodities = []
    for _ in range(5):
        a, b = rng.sample(servers, 2)
        if net.server_switch(a) != net.server_switch(b):
            commodities.append(Commodity(a, b))
    if not commodities:
        return
    problem = build_flow_problem(net, commodities)
    lam = solve_concurrent_exact(problem).throughput
    assert lam <= concurrent_upper_bound(problem) + 1e-8
