"""Unit tests for the network element model."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PortBudgetError, TopologyError
from repro.topology.elements import (
    AggSwitch,
    CoreSwitch,
    EdgeSwitch,
    Network,
    PlainSwitch,
    equipment_signature,
    merge_parallel,
    total_ports,
)


def make_pair():
    net = Network("t")
    a, b = PlainSwitch(0), PlainSwitch(1)
    net.add_switch(a, 4)
    net.add_switch(b, 4)
    return net, a, b


class TestSwitchIdentity:
    def test_kinds_do_not_collide(self):
        assert EdgeSwitch(0, 1) != AggSwitch(0, 1)
        assert CoreSwitch(0) != PlainSwitch(0)

    def test_same_kind_same_fields_equal(self):
        assert EdgeSwitch(2, 3) == EdgeSwitch(2, 3)

    def test_hashable_in_sets(self):
        s = {EdgeSwitch(0, 1), AggSwitch(0, 1), CoreSwitch(5)}
        assert len(s) == 3

    def test_kind_attribute(self):
        assert EdgeSwitch(0, 0).kind == "edge"
        assert AggSwitch(0, 0).kind == "agg"
        assert CoreSwitch(0).kind == "core"
        assert PlainSwitch(0).kind == "switch"


class TestSwitchRegistration:
    def test_duplicate_switch_rejected(self):
        net, a, _b = make_pair()
        with pytest.raises(TopologyError):
            net.add_switch(a, 4)

    def test_nonpositive_ports_rejected(self):
        net = Network("t")
        with pytest.raises(TopologyError):
            net.add_switch(PlainSwitch(9), 0)

    def test_switches_of_kind(self):
        net = Network("t")
        net.add_switch(EdgeSwitch(0, 0), 2)
        net.add_switch(AggSwitch(0, 0), 2)
        net.add_switch(EdgeSwitch(0, 1), 2)
        assert len(net.switches_of_kind("edge")) == 2
        assert len(net.switches_of_kind("agg")) == 1
        assert net.switches_of_kind("core") == []


class TestCables:
    def test_cable_consumes_ports(self):
        net, a, b = make_pair()
        net.add_cable(a, b)
        assert net.ports_used(a) == 1
        assert net.ports_used(b) == 1
        assert net.ports_free(a) == 3

    def test_self_loop_rejected(self):
        net, a, _b = make_pair()
        with pytest.raises(TopologyError):
            net.add_cable(a, a)

    def test_unknown_switch_rejected(self):
        net, a, _b = make_pair()
        with pytest.raises(TopologyError):
            net.add_cable(a, PlainSwitch(99))

    def test_port_budget_enforced(self):
        net = Network("t")
        a, b = PlainSwitch(0), PlainSwitch(1)
        net.add_switch(a, 1)
        net.add_switch(b, 4)
        net.add_cable(a, b)
        with pytest.raises(PortBudgetError):
            net.add_cable(a, b)

    def test_parallel_cables_accumulate(self):
        net, a, b = make_pair()
        net.add_cable(a, b)
        net.add_cable(a, b)
        assert net.capacity(a, b) == 2.0
        assert net.num_cables == 2
        assert net.degree(a) == 2
        assert net.fabric.number_of_edges() == 1

    def test_remove_cable_frees_ports(self):
        net, a, b = make_pair()
        net.add_cable(a, b)
        net.add_cable(a, b)
        net.remove_cable(a, b)
        assert net.capacity(a, b) == 1.0
        assert net.ports_used(a) == 1
        net.remove_cable(a, b)
        assert net.capacity(a, b) == 0.0
        assert not net.fabric.has_edge(a, b)

    def test_remove_missing_cable_rejected(self):
        net, a, b = make_pair()
        with pytest.raises(TopologyError):
            net.remove_cable(a, b)


class TestServers:
    def test_server_attachment(self):
        net, a, _b = make_pair()
        net.add_server(7, a)
        assert net.server_switch(7) == a
        assert net.servers_on(a) == [7]
        assert net.server_count(a) == 1
        assert net.ports_used(a) == 1

    def test_duplicate_server_rejected(self):
        net, a, b = make_pair()
        net.add_server(7, a)
        with pytest.raises(TopologyError):
            net.add_server(7, b)

    def test_detach_server(self):
        net, a, _b = make_pair()
        net.add_server(7, a)
        assert net.detach_server(7) == a
        assert net.server_count(a) == 0
        assert net.ports_used(a) == 0
        with pytest.raises(TopologyError):
            net.server_switch(7)

    def test_detach_unknown_rejected(self):
        net, _a, _b = make_pair()
        with pytest.raises(TopologyError):
            net.detach_server(3)

    def test_unknown_queries_rejected(self):
        net, _a, _b = make_pair()
        with pytest.raises(TopologyError):
            net.servers_on(PlainSwitch(50))
        with pytest.raises(TopologyError):
            net.server_count(PlainSwitch(50))


class TestDerived:
    def test_switch_index_stable_and_dense(self):
        net, a, b = make_pair()
        index = net.switch_index()
        assert index == {a: 0, b: 1}
        assert net.switch_index() == index

    def test_host_counts_skips_empty(self):
        net, a, _b = make_pair()
        net.add_server(0, a)
        assert net.host_counts() == {a: 1}

    def test_copy_is_equal_and_independent(self):
        net, a, b = make_pair()
        net.add_cable(a, b)
        net.add_server(0, a)
        clone = net.copy()
        assert equipment_signature(clone) == equipment_signature(net)
        assert clone.capacity(a, b) == net.capacity(a, b)
        clone.add_server(1, b)
        assert net.num_servers == 1

    def test_copy_preserves_parallel_capacity(self):
        net, a, b = make_pair()
        net.add_cable(a, b)
        net.add_cable(a, b)
        clone = net.copy()
        assert clone.capacity(a, b) == 2.0
        assert clone.num_cables == 2

    def test_total_ports(self):
        net, _a, _b = make_pair()
        assert total_ports(net) == 8

    def test_edge_list(self):
        net, a, b = make_pair()
        net.add_cable(a, b)
        assert net.edge_list() == [(a, b, 1.0)]


class TestMergeParallel:
    def test_counts_unordered_pairs(self):
        a, b, c = PlainSwitch(0), PlainSwitch(1), CoreSwitch(2)
        counts = merge_parallel([(a, b), (b, a), (a, c)])
        assert counts[frozenset((a, b))] == 2
        assert counts[frozenset((a, c))] == 1

    def test_mixed_kinds_do_not_raise(self):
        # Heterogeneous namedtuples are not orderable; frozenset keys must
        # absorb that.
        pairs = [(EdgeSwitch(0, 0), CoreSwitch(1)), (CoreSwitch(1), EdgeSwitch(0, 0))]
        counts = merge_parallel(pairs)
        assert list(counts.values()) == [2]


@given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6))
def test_property_port_ledger_consistency(cables, servers):
    """Ports used always equals cables + servers touching the switch."""
    net = Network("prop")
    a, b = PlainSwitch(0), PlainSwitch(1)
    budget = cables + servers
    net.add_switch(a, budget)
    net.add_switch(b, cables)
    for _ in range(cables):
        net.add_cable(a, b)
    for s in range(servers):
        net.add_server(s, a)
    assert net.ports_used(a) == cables + servers
    assert net.ports_free(a) == 0
    assert net.ports_used(b) == cables
