"""Unit tests for topology exporters."""

from __future__ import annotations

import json
import random

import pytest

from repro.errors import TopologyError
from repro.topology.export import (
    from_json_dict,
    load_json,
    save_json,
    to_dot,
    to_edge_list,
    to_json_dict,
)
from repro.topology.elements import equipment_signature
from repro.topology.fattree import build_fat_tree
from repro.topology.jellyfish import build_jellyfish_like_fat_tree
from repro.topology.twostage import build_two_stage
from repro.topology.clos import fat_tree_params


class TestDot:
    def test_structure(self, fat8):
        dot = to_dot(fat8)
        assert dot.startswith('graph "fat-tree(k=8)"')
        assert dot.rstrip().endswith("}")
        assert dot.count(" -- ") == fat8.fabric.number_of_edges()

    def test_layer_styles_present(self, fat8):
        dot = to_dot(fat8)
        assert "striped" in dot      # cores
        assert "gray85" in dot       # aggs
        assert "gray95" in dot       # edges

    def test_servers_optional(self, fat8):
        assert "srv_0" not in to_dot(fat8)
        with_servers = to_dot(fat8, include_servers=True)
        assert "srv_0" in with_servers
        assert "style=dotted" in with_servers

    def test_parallel_cables_visible(self):
        from repro.topology.elements import Network, PlainSwitch

        net = Network("p")
        a, b = PlainSwitch(0), PlainSwitch(1)
        net.add_switch(a, 4)
        net.add_switch(b, 4)
        net.add_cable(a, b)
        net.add_cable(a, b)
        assert "penwidth=2" in to_dot(net)


class TestJsonRoundTrip:
    @pytest.mark.parametrize("builder", ["fat", "jelly", "twostage"])
    def test_round_trip_preserves_everything(self, builder):
        if builder == "fat":
            net = build_fat_tree(6)
        elif builder == "jelly":
            net = build_jellyfish_like_fat_tree(6, random.Random(0))
        else:
            net = build_two_stage(fat_tree_params(6), random.Random(0))
        restored = from_json_dict(to_json_dict(net))
        assert equipment_signature(restored) == equipment_signature(net)
        assert set(restored.fabric.edges()) == set(net.fabric.edges())
        assert {s: restored.server_switch(s) for s in restored.servers()} == {
            s: net.server_switch(s) for s in net.servers()
        }

    def test_json_serializable(self, fat8):
        text = json.dumps(to_json_dict(fat8))
        assert from_json_dict(json.loads(text)).num_servers == 128

    def test_file_round_trip(self, fat8, tmp_path):
        path = tmp_path / "net.json"
        save_json(fat8, str(path))
        restored = load_json(str(path))
        assert restored.num_cables == fat8.num_cables

    def test_malformed_rejected(self):
        with pytest.raises(TopologyError):
            from_json_dict({"name": "x"})

    def test_unknown_kind_rejected(self, fat8):
        data = to_json_dict(fat8)
        data["switches"][0]["id"][0] = "quantum"
        with pytest.raises(TopologyError):
            from_json_dict(data)


class TestEdgeList:
    def test_one_line_per_edge(self, fat8):
        text = to_edge_list(fat8)
        assert len(text.splitlines()) == fat8.fabric.number_of_edges()
        first = text.splitlines()[0].split("\t")
        assert len(first) == 3
        assert float(first[2]) > 0
