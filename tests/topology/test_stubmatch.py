"""Property tests for configuration-model stub matching."""

from __future__ import annotations

import random
from collections import Counter

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.topology.stubmatch import match_stubs, spread_evenly


def degree_counter(edges):
    counts = Counter()
    for u, v in edges:
        counts[u] += 1
        counts[v] += 1
    return counts


class TestMatchStubs:
    def test_empty(self):
        assert match_stubs({}, random.Random(0)) == []

    def test_odd_total_rejected(self):
        with pytest.raises(TopologyError):
            match_stubs({"a": 1, "b": 2}, random.Random(0))

    def test_negative_rejected(self):
        with pytest.raises(TopologyError):
            match_stubs({"a": -1, "b": 1}, random.Random(0))

    def test_unrealizable_simple_graph_raises(self):
        # One node with 4 stubs, one with 2: a simple graph cannot host
        # more than 1 edge between two nodes.
        with pytest.raises(TopologyError):
            match_stubs({"a": 4, "b": 4}, random.Random(0))

    def test_parallel_allowed_realizes_multigraph(self):
        edges = match_stubs({"a": 4, "b": 4}, random.Random(0),
                            allow_parallel=True)
        assert degree_counter(edges) == {"a": 4, "b": 4}
        assert all(u != v for u, v in edges)


@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=4),
        min_size=4,
        max_size=12,
    ),
    st.integers(min_value=0, max_value=1000),
)
def test_property_degree_sequence_preserved(stubs, seed):
    total = sum(stubs.values())
    if total % 2 == 1:
        # Make the instance matchable.
        key = next(iter(stubs))
        stubs[key] += 1
    try:
        edges = match_stubs(dict(stubs), random.Random(seed),
                            allow_parallel=True)
    except TopologyError:
        return  # unlucky unrealizable draw; nothing to assert
    counts = degree_counter(edges)
    for node, degree in stubs.items():
        assert counts.get(node, 0) == degree
    assert all(u != v for u, v in edges)


@given(
    st.integers(min_value=4, max_value=12),
    st.integers(min_value=0, max_value=1000),
)
def test_property_simple_regular_graph(nodes, seed):
    """3-regular simple graphs exist for any even-stub node set >= 4."""
    stubs = {i: 3 for i in range(nodes)}
    if (3 * nodes) % 2 == 1:
        stubs[0] = 4
    edges = match_stubs(stubs, random.Random(seed))
    seen = set()
    for u, v in edges:
        assert u != v
        key = frozenset((u, v))
        assert key not in seen
        seen.add(key)


class TestSpreadEvenly:
    def test_exact_division(self):
        assert spread_evenly(12, 4, random.Random(0)) == [3, 3, 3, 3]

    def test_remainder_distributed(self):
        parts = spread_evenly(10, 4, random.Random(0))
        assert sum(parts) == 10
        assert sorted(parts) == [2, 2, 3, 3]

    def test_zero_total(self):
        assert spread_evenly(0, 3, random.Random(0)) == [0, 0, 0]

    def test_bad_buckets(self):
        with pytest.raises(TopologyError):
            spread_evenly(5, 0, random.Random(0))

    @given(
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=99),
    )
    def test_property_sum_and_balance(self, total, buckets, seed):
        parts = spread_evenly(total, buckets, random.Random(seed))
        assert sum(parts) == total
        assert max(parts) - min(parts) <= 1
