"""Unit and property tests for the Jellyfish random-graph builder."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.topology.clos import fat_tree_params
from repro.topology.fattree import build_fat_tree
from repro.topology.jellyfish import (
    JellyfishSpec,
    build_jellyfish,
    build_jellyfish_like_fat_tree,
)
from repro.topology.stats import is_connected
from repro.topology.validate import assert_same_equipment, assert_valid, audit


class TestSpec:
    def test_rejects_too_few_switches(self):
        with pytest.raises(TopologyError):
            JellyfishSpec(num_switches=1, ports_per_switch=4, num_servers=1)

    def test_rejects_server_overflow(self):
        with pytest.raises(TopologyError):
            JellyfishSpec(num_switches=2, ports_per_switch=2, num_servers=4)

    def test_matching_fat_tree(self):
        spec = JellyfishSpec.matching(fat_tree_params(8))
        assert spec.num_switches == 80
        assert spec.ports_per_switch == 8
        assert spec.num_servers == 128


class TestBuild:
    @pytest.mark.parametrize("k", [4, 6, 8])
    def test_same_equipment_as_fat_tree(self, k):
        jf = build_jellyfish_like_fat_tree(k, random.Random(7))
        assert_same_equipment(jf, build_fat_tree(k))

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_valid_and_connected(self, seed):
        jf = build_jellyfish_like_fat_tree(8, random.Random(seed))
        assert_valid(jf)
        assert is_connected(jf)

    def test_server_spread_even(self):
        jf = build_jellyfish_like_fat_tree(8, random.Random(0))
        counts = [jf.server_count(s) for s in jf.switches()]
        assert max(counts) - min(counts) <= 1

    def test_no_self_loops_or_parallel(self):
        jf = build_jellyfish_like_fat_tree(8, random.Random(0))
        for u, v, data in jf.fabric.edges(data=True):
            assert u != v
            assert data["mult"] == 1

    def test_nearly_all_ports_used(self):
        jf = build_jellyfish_like_fat_tree(8, random.Random(0))
        report = audit(jf)
        assert report.ok
        assert report.free_ports <= 1

    def test_deterministic_under_seed(self):
        a = build_jellyfish_like_fat_tree(6, random.Random(42))
        b = build_jellyfish_like_fat_tree(6, random.Random(42))
        assert set(a.fabric.edges()) == set(b.fabric.edges())
        assert {s: a.server_switch(s) for s in a.servers()} == {
            s: b.server_switch(s) for s in b.servers()
        }

    def test_different_seeds_differ(self):
        a = build_jellyfish_like_fat_tree(6, random.Random(1))
        b = build_jellyfish_like_fat_tree(6, random.Random(2))
        assert set(a.fabric.edges()) != set(b.fabric.edges())

    def test_server_ids_scattered(self):
        """Consecutive server ids should not concentrate on one switch."""
        jf = build_jellyfish_like_fat_tree(8, random.Random(0))
        first_pod_block = [jf.server_switch(s) for s in range(16)]
        assert len(set(first_pod_block)) >= 8


@given(
    st.integers(min_value=4, max_value=20),
    st.integers(min_value=3, max_value=6),
    st.integers(min_value=0, max_value=100),
)
def test_property_jellyfish_invariants(switches, ports, seed):
    """Random specs: budgets respected, spread even, <=1 free port left."""
    servers = max(1, switches * ports // 4)
    spec = JellyfishSpec(
        num_switches=switches, ports_per_switch=ports, num_servers=servers
    )
    net = build_jellyfish(spec, random.Random(seed))
    assert net.num_servers == servers
    counts = [net.server_count(s) for s in net.switches()]
    assert max(counts) - min(counts) <= 1
    for s in net.switches():
        assert net.ports_used(s) <= net.ports(s)
    report = audit(net, require_connected=False)
    assert report.ok
    # An odd stub total forces one leftover port, and a switch with more
    # network stubs than it has possible distinct neighbors (N-1 in a
    # simple graph) strands the excess no matter what the repair does.
    base, extra = divmod(servers, switches)
    unavoidable = 0
    for i in range(switches):
        stubs = ports - (base + (1 if i < extra else 0))
        unavoidable += max(0, stubs - (switches - 1))
    assert report.free_ports <= unavoidable + 3
