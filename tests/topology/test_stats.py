"""Unit tests for graph metrics (path lengths, spreads, profiles)."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.topology.elements import Network, PlainSwitch
from repro.topology.stats import (
    average_server_path_length,
    average_within_group_path_length,
    degree_histogram,
    is_connected,
    link_kind_profile,
    server_counts_by_kind,
    server_spread,
    switch_distances,
)


class TestSwitchDistances:
    def test_triangle(self, triangle):
        dist, idx = switch_distances(triangle)
        nodes = list(idx)
        for a in nodes:
            for b in nodes:
                expected = 0 if a == b else 1
                assert dist[idx[a], idx[b]] == expected

    def test_path(self, path3):
        dist, idx = switch_distances(path3)
        assert dist[idx[PlainSwitch(0)], idx[PlainSwitch(2)]] == 2

    def test_disconnected_inf(self):
        net = Network("disc")
        a, b = PlainSwitch(0), PlainSwitch(1)
        net.add_switch(a, 2)
        net.add_switch(b, 2)
        dist, idx = switch_distances(net)
        assert dist[idx[a], idx[b]] == float("inf")
        assert not is_connected(net)


class TestAveragePathLength:
    def test_path3(self, path3):
        # One pair, distance 2 switch hops + 2 server hops.
        assert average_server_path_length(path3) == pytest.approx(4.0)

    def test_same_switch_pair_is_two_hops(self):
        net = Network("one")
        a = PlainSwitch(0)
        net.add_switch(a, 4)
        net.add_server(0, a)
        net.add_server(1, a)
        assert average_server_path_length(net) == pytest.approx(2.0)

    def test_mixture(self, triangle):
        # 3 servers, all pairs at switch distance 1 -> 3 hops each.
        assert average_server_path_length(triangle) == pytest.approx(3.0)

    def test_needs_two_servers(self):
        net = Network("t")
        a = PlainSwitch(0)
        net.add_switch(a, 2)
        net.add_server(0, a)
        with pytest.raises(TopologyError):
            average_server_path_length(net)

    def test_disconnected_servers_raise(self):
        net = Network("disc")
        a, b = PlainSwitch(0), PlainSwitch(1)
        net.add_switch(a, 2)
        net.add_switch(b, 2)
        net.add_server(0, a)
        net.add_server(1, b)
        with pytest.raises(TopologyError):
            average_server_path_length(net)

    def test_precomputed_distances_reused(self, triangle):
        cached = switch_distances(triangle)
        assert average_server_path_length(
            triangle, distances=cached
        ) == pytest.approx(average_server_path_length(triangle))


class TestWithinGroups:
    def test_groups_restrict_pairs(self, path3):
        # Both servers in one group -> same as global APL.
        value = average_within_group_path_length(path3, [[0, 1]])
        assert value == pytest.approx(4.0)

    def test_singleton_groups_rejected(self, path3):
        with pytest.raises(TopologyError):
            average_within_group_path_length(path3, [[0], [1]])

    def test_group_aggregation_weights_by_pairs(self, triangle):
        # Group A has a same-switch-free pair at 3 hops; group B has the
        # pair (0, 2), also 3 hops.
        value = average_within_group_path_length(triangle, [[0, 1], [0, 2]])
        assert value == pytest.approx(3.0)


class TestSpreadAndProfiles:
    def test_server_counts_by_kind(self, fat8):
        assert server_counts_by_kind(fat8) == {"edge": 128}

    def test_server_spread(self, fat8):
        assert server_spread(fat8, "edge") == (4, 4)
        assert server_spread(fat8, "core") == (0, 0)

    def test_spread_unknown_kind(self, fat8):
        with pytest.raises(TopologyError):
            server_spread(fat8, "nope")

    def test_link_kind_profile_fat_tree(self, fat8):
        from repro.topology.elements import AggSwitch, CoreSwitch, EdgeSwitch

        assert link_kind_profile(fat8, EdgeSwitch(0, 0)) == {"agg": 4}
        assert link_kind_profile(fat8, AggSwitch(0, 0)) == {
            "edge": 4,
            "core": 4,
        }
        assert link_kind_profile(fat8, CoreSwitch(0)) == {"agg": 8}

    def test_degree_histogram(self, fat8):
        hist = degree_histogram(fat8)
        # 32 edge switches at fabric degree 4 (servers excluded);
        # 32 aggs + 16 cores at degree 8.
        assert hist == {4: 32, 8: 48}
