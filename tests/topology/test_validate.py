"""Unit tests for topology audits."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.topology.elements import Network, PlainSwitch
from repro.topology.fattree import build_fat_tree
from repro.topology.validate import (
    assert_same_equipment,
    assert_valid,
    audit,
)


def test_audit_ok_on_fat_tree(fat8):
    report = audit(fat8)
    assert report.ok
    assert report.free_ports == 0
    assert report.num_switches == 80
    assert report.num_servers == 128


def test_audit_counts_free_ports():
    net = Network("t")
    a, b = PlainSwitch(0), PlainSwitch(1)
    net.add_switch(a, 4)
    net.add_switch(b, 4)
    net.add_cable(a, b)
    report = audit(net, require_connected=False)
    assert report.free_ports == 6


def test_audit_flags_disconnection():
    net = Network("t")
    net.add_switch(PlainSwitch(0), 2)
    net.add_switch(PlainSwitch(1), 2)
    report = audit(net)
    assert not report.ok
    assert any("not connected" in p for p in report.problems)
    assert audit(net, require_connected=False).ok


def test_audit_detects_ledger_desync():
    net = Network("t")
    a, b = PlainSwitch(0), PlainSwitch(1)
    net.add_switch(a, 4)
    net.add_switch(b, 4)
    net.add_cable(a, b)
    # Corrupt the ledger behind the API's back.
    net._ports_used[a] = 0
    report = audit(net, require_connected=False)
    assert any("out of sync" in p for p in report.problems)


def test_assert_valid_raises_with_context():
    net = Network("broken")
    net.add_switch(PlainSwitch(0), 2)
    net.add_switch(PlainSwitch(1), 2)
    with pytest.raises(TopologyError, match="broken"):
        assert_valid(net)


def test_same_equipment_accepts_isomorphic_budgets(fat8):
    assert_same_equipment(fat8, build_fat_tree(8))


def test_same_equipment_rejects_server_mismatch(fat8):
    other = build_fat_tree(8)
    other.detach_server(0)
    with pytest.raises(TopologyError, match="equipment mismatch"):
        assert_same_equipment(fat8, other)


def test_same_equipment_rejects_different_k(fat8):
    with pytest.raises(TopologyError):
        assert_same_equipment(fat8, build_fat_tree(6))
