"""Unit tests for the fat-tree builder."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.topology.fattree import build_fat_tree, fat_tree_equipment
from repro.topology.stats import (
    average_server_path_length,
    is_connected,
    switch_distances,
)
from repro.topology.validate import assert_valid


@pytest.mark.parametrize("k", [4, 6, 8, 10])
def test_counts(k):
    net = build_fat_tree(k)
    assert net.num_switches == 5 * k * k // 4
    assert net.num_servers == k**3 // 4
    # k^2/4 edge-agg links per pod x k pods, plus k^2/4 x k/2... total
    # switch-switch cables = pods*d*aggs + cores*k = k^3/4 + k^3/4... the
    # two layers have equal cable counts in a fat-tree.
    assert net.num_cables == 2 * (k**3 // 4)


@pytest.mark.parametrize("k", [4, 6, 8])
def test_every_switch_has_k_ports_fully_used(k):
    net = build_fat_tree(k)
    for s in net.switches():
        assert net.ports(s) == k
        assert net.ports_free(s) == 0


@pytest.mark.parametrize("k", [4, 6, 8])
def test_valid_and_connected(k):
    net = build_fat_tree(k)
    assert_valid(net)
    assert is_connected(net)


def test_rejects_odd_or_small_k():
    with pytest.raises(TopologyError):
        build_fat_tree(3)
    with pytest.raises(TopologyError):
        build_fat_tree(2)


def test_k4_distances_exact():
    """Hand-checkable k=4 distances: 2 same-switch, 4 intra-pod, 6 inter."""
    net = build_fat_tree(4)
    dist, idx = switch_distances(net)
    from repro.topology.elements import AggSwitch, CoreSwitch, EdgeSwitch

    assert dist[idx[EdgeSwitch(0, 0)], idx[EdgeSwitch(0, 1)]] == 2
    assert dist[idx[EdgeSwitch(0, 0)], idx[EdgeSwitch(1, 0)]] == 4
    assert dist[idx[EdgeSwitch(0, 0)], idx[AggSwitch(0, 0)]] == 1
    assert dist[idx[CoreSwitch(0)], idx[EdgeSwitch(2, 1)]] == 2


def test_k4_apl_exact():
    """Closed form for fat-tree(4): all server pairs by hop count.

    16 servers; per server: 1 same-switch (2 hops), 2 same-pod other
    edge (4 hops), 12 cross-pod (6 hops) -> APL = (2 + 8 + 72)/15.
    """
    net = build_fat_tree(4)
    expected = (1 * 2 + 2 * 4 + 12 * 6) / 15
    assert average_server_path_length(net) == pytest.approx(expected)


def test_apl_grows_toward_6_with_k():
    apl = [average_server_path_length(build_fat_tree(k)) for k in (4, 8, 12)]
    assert apl[0] < apl[1] < apl[2] < 6.0


def test_equipment_helper_matches_builder():
    p = fat_tree_equipment(8)
    net = build_fat_tree(8)
    assert p.num_servers == net.num_servers
    assert p.num_switches == net.num_switches
