"""Unit tests for the two-stage random graph baseline."""

from __future__ import annotations

import random

import pytest

from repro.topology.clos import fat_tree_params
from repro.topology.elements import CoreSwitch
from repro.topology.fattree import build_fat_tree
from repro.topology.stats import is_connected
from repro.topology.twostage import PodSwitch, build_two_stage
from repro.topology.validate import assert_same_equipment, assert_valid


@pytest.mark.parametrize("k", [4, 6, 8])
def test_same_equipment_as_fat_tree(k):
    ts = build_two_stage(fat_tree_params(k), random.Random(3))
    assert_same_equipment(ts, build_fat_tree(k))


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_valid_and_connected(seed):
    ts = build_two_stage(fat_tree_params(8), random.Random(seed))
    assert_valid(ts)
    assert is_connected(ts)


def test_pod_switch_inventory():
    params = fat_tree_params(8)
    ts = build_two_stage(params, random.Random(0))
    pod_switches = ts.switches_of_kind("podsw")
    assert len(pod_switches) == params.pods * (params.d + params.aggs_per_pod)
    assert len(ts.switches_of_kind("core")) == params.num_cores


def test_intra_pod_link_count_matches_clos():
    """Each Pod's internal random graph has exactly d * d/r links."""
    params = fat_tree_params(8)
    ts = build_two_stage(params, random.Random(0))
    expected = params.d * params.aggs_per_pod
    for pod in range(params.pods):
        internal = 0
        for u, v, data in ts.fabric.edges(data=True):
            if (
                isinstance(u, PodSwitch)
                and isinstance(v, PodSwitch)
                and u.pod == pod
                and v.pod == pod
            ):
                internal += data["mult"]
        assert internal == expected


def test_pod_uplink_count_matches_clos():
    """Each Pod exposes d * h/r core-facing links (to cores or other Pods)."""
    params = fat_tree_params(8)
    ts = build_two_stage(params, random.Random(0))
    expected = params.d * params.group_size
    for pod in range(params.pods):
        external = 0
        for u, v, data in ts.fabric.edges(data=True):
            u_in = isinstance(u, PodSwitch) and u.pod == pod
            v_in = isinstance(v, PodSwitch) and v.pod == pod
            if u_in != v_in:
                external += data["mult"]
        assert external == expected


def test_core_degree_is_pods():
    params = fat_tree_params(6)
    ts = build_two_stage(params, random.Random(0))
    for c in range(params.num_cores):
        assert ts.degree(CoreSwitch(c)) == params.pods


def test_servers_stay_in_their_pod():
    """Server ids keep the dense Pod-major scheme (Pod p hosts its ids)."""
    params = fat_tree_params(6)
    ts = build_two_stage(params, random.Random(0))
    for pod in range(params.pods):
        for server in params.pod_servers(pod):
            host = ts.server_switch(server)
            assert isinstance(host, PodSwitch)
            assert host.pod == pod


def test_servers_spread_within_pod():
    params = fat_tree_params(8)
    ts = build_two_stage(params, random.Random(0))
    for pod in range(params.pods):
        counts = [
            ts.server_count(s)
            for s in ts.switches_of_kind("podsw")
            if s.pod == pod
        ]
        assert max(counts) - min(counts) <= 1


def test_deterministic_under_seed():
    a = build_two_stage(fat_tree_params(6), random.Random(9))
    b = build_two_stage(fat_tree_params(6), random.Random(9))
    assert set(a.fabric.edges()) == set(b.fabric.edges())
