"""Unit tests for the generic Clos parameterization and builder."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.topology.clos import (
    ClosParams,
    build_clos,
    fat_tree_params,
)
from repro.topology.elements import AggSwitch, CoreSwitch, EdgeSwitch
from repro.topology.stats import is_connected
from repro.topology.validate import assert_valid


class TestClosParamsValidation:
    def test_r_must_divide_d(self):
        with pytest.raises(TopologyError):
            ClosParams(pods=2, d=3, r=2, h=4, servers_per_edge=2)

    def test_r_must_divide_h(self):
        with pytest.raises(TopologyError):
            ClosParams(pods=2, d=4, r=2, h=3, servers_per_edge=2)

    def test_positive_fields(self):
        with pytest.raises(TopologyError):
            ClosParams(pods=0, d=2, r=1, h=2, servers_per_edge=2)
        with pytest.raises(TopologyError):
            ClosParams(pods=2, d=0, r=1, h=2, servers_per_edge=2)
        with pytest.raises(TopologyError):
            ClosParams(pods=2, d=2, r=1, h=2, servers_per_edge=0)

    def test_fat_tree_params_even_k_only(self):
        with pytest.raises(TopologyError):
            fat_tree_params(5)
        with pytest.raises(TopologyError):
            fat_tree_params(2)


class TestDerivedSizes:
    def test_fat_tree_8(self):
        p = fat_tree_params(8)
        assert (p.pods, p.d, p.r, p.h, p.servers_per_edge) == (8, 4, 1, 4, 4)
        assert p.aggs_per_pod == 4
        assert p.group_size == 4
        assert p.num_cores == 16
        assert p.num_switches == 80
        assert p.num_servers == 128
        assert p.servers_per_pod == 16

    def test_fat_tree_port_budgets_all_k(self):
        for k in (4, 6, 8, 10, 16):
            p = fat_tree_params(k)
            assert p.edge_ports == k
            assert p.agg_ports == k
            assert p.core_ports == k

    def test_oversubscribed_layout(self):
        # 2:1 oversubscription at the edge: more servers than uplinks.
        p = ClosParams(pods=4, d=4, r=2, h=4, servers_per_edge=4)
        assert p.aggs_per_pod == 2
        assert p.group_size == 2
        assert p.num_cores == 8
        assert p.agg_of_edge(3) == 1

    def test_core_group_partition(self):
        p = fat_tree_params(8)
        seen = set()
        for j in range(p.d):
            group = set(p.core_group(j))
            assert len(group) == p.group_size
            assert not group & seen
            seen |= group
        assert seen == set(range(p.num_cores))


class TestServerIdScheme:
    def test_round_trip(self):
        p = fat_tree_params(8)
        for pod in range(p.pods):
            for edge in range(p.d):
                for slot in range(p.servers_per_edge):
                    sid = p.server_id(pod, edge, slot)
                    assert p.server_pod(sid) == pod
                    assert p.server_edge(sid) == edge
                    assert p.server_slot(sid) == slot

    def test_ids_dense(self):
        p = fat_tree_params(6)
        ids = sorted(
            p.server_id(pod, edge, slot)
            for pod in range(p.pods)
            for edge in range(p.d)
            for slot in range(p.servers_per_edge)
        )
        assert ids == list(range(p.num_servers))

    def test_pod_servers_contiguous(self):
        p = fat_tree_params(6)
        assert list(p.pod_servers(0)) == list(range(p.servers_per_pod))
        assert list(p.pod_servers(1))[0] == p.servers_per_pod

    def test_bad_slot_rejected(self):
        p = fat_tree_params(4)
        with pytest.raises(TopologyError):
            p.server_id(0, 0, p.servers_per_edge)


@st.composite
def clos_params(draw):
    r = draw(st.integers(min_value=1, max_value=3))
    d = r * draw(st.integers(min_value=1, max_value=4))
    h = r * draw(st.integers(min_value=1, max_value=4))
    return ClosParams(
        pods=draw(st.integers(min_value=1, max_value=5)),
        d=d,
        r=r,
        h=h,
        servers_per_edge=draw(st.integers(min_value=1, max_value=4)),
    )


@given(clos_params())
def test_property_build_clos_well_formed(params):
    """Any valid ClosParams builds a valid, connected network."""
    net = build_clos(params)
    assert net.num_servers == params.num_servers
    assert net.num_switches == params.num_switches
    assert_valid(net)
    assert is_connected(net)


@given(clos_params())
def test_property_clos_degrees(params):
    """Edge/agg/core degrees follow the layout arithmetic exactly."""
    net = build_clos(params)
    for pod in range(params.pods):
        for j in range(params.d):
            edge = EdgeSwitch(pod, j)
            assert net.degree(edge) == params.aggs_per_pod
            assert net.server_count(edge) == params.servers_per_edge
        for a in range(params.aggs_per_pod):
            agg = AggSwitch(pod, a)
            assert net.degree(agg) == params.d + params.h
    for c in range(params.num_cores):
        assert net.degree(CoreSwitch(c)) == params.pods


def test_clos_agg_core_wiring_follows_groups():
    params = fat_tree_params(6)
    net = build_clos(params)
    for pod in range(params.pods):
        for j in range(params.d):
            agg = AggSwitch(pod, params.agg_of_edge(j))
            for c in params.core_group(j):
                assert net.fabric.has_edge(agg, CoreSwitch(c))
