"""Unit tests for multi-seed experiment statistics."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.experiments.common import ExperimentResult
from repro.experiments.statistics import (
    SeededResult,
    SeriesStats,
    run_seeded,
    significantly_below,
)


def fake_experiment(seed: int = 0, ks=(4, 8)) -> ExperimentResult:
    """Deterministic stand-in: values depend on seed in a known way."""
    result = ExperimentResult("fake", "k", "y")
    a = result.new_series("a")
    b = result.new_series("b")
    for k in ks:
        a.add(k, 1.0 + 0.1 * seed)
        b.add(k, 2.0 + 0.1 * seed)
    return result


class TestSeriesStats:
    def test_mean_std_spread(self):
        stats = SeriesStats("s")
        for v in (1.0, 2.0, 3.0):
            stats.add(4, v)
        assert stats.mean(4) == pytest.approx(2.0)
        assert stats.std(4) == pytest.approx(1.0)
        assert stats.spread(4) == (1.0, 3.0)

    def test_single_sample_zero_std(self):
        stats = SeriesStats("s")
        stats.add(4, 5.0)
        assert stats.std(4) == 0.0

    def test_missing_x_raises(self):
        stats = SeriesStats("s")
        with pytest.raises(ReproError):
            stats.mean(99)


class TestRunSeeded:
    def test_aggregates_across_seeds(self):
        result = run_seeded(fake_experiment, seeds=(0, 1, 2))
        assert result.seeds == (0, 1, 2)
        a = result.stats("a")
        assert a.mean(4) == pytest.approx(1.1)
        assert len(a.samples[4]) == 3

    def test_kwargs_forwarded(self):
        result = run_seeded(fake_experiment, seeds=(0,), ks=(6,))
        assert result.stats("a").xs() == [6]

    def test_no_seeds_rejected(self):
        with pytest.raises(ReproError):
            run_seeded(fake_experiment, seeds=())

    def test_unknown_series_raises(self):
        result = run_seeded(fake_experiment, seeds=(0,))
        with pytest.raises(ReproError):
            result.stats("zzz")

    def test_table_renders(self):
        result = run_seeded(fake_experiment, seeds=(0, 1))
        table = result.table(precision=2)
        assert "a (mean+-std)" in table
        assert "+-" in table


class TestSignificance:
    def test_clear_separation(self):
        result = run_seeded(fake_experiment, seeds=(0, 1, 2))
        assert significantly_below(result, "a", "b", 4)
        assert not significantly_below(result, "b", "a", 4)

    def test_overlapping_not_significant(self):
        result = SeededResult("x", (0, 1))
        a = SeriesStats("a")
        b = SeriesStats("b")
        for v in (1.0, 2.0):
            a.add(4, v)
        for v in (1.5, 2.5):
            b.add(4, v)
        result.series = {"a": a, "b": b}
        assert not significantly_below(result, "a", "b", 4)


class TestOnRealExperiment:
    def test_fig6_flat_vs_two_stage_multiseed(self):
        """The near-tie claim, resolved with statistics: over seeds,
        flat-tree's in-Pod APL is within noise of two-stage's (and both
        are far below fat-tree's)."""
        from repro.experiments.fig6_pod_pathlength import run_fig6

        result = run_seeded(run_fig6, seeds=(0, 1, 2), ks=(8,))
        flat = result.stats("flat-tree")
        two = result.stats("two-stage random graph")
        fat = result.stats("fat-tree")
        margin = flat.std(8) + two.std(8) + 0.05
        assert abs(flat.mean(8) - two.mean(8)) <= margin
        assert flat.mean(8) < fat.mean(8)
