"""Unit tests for the link-failure degradation experiment."""

from __future__ import annotations

import random

import pytest

from repro.errors import ReproError
from repro.experiments.degradation import degrade, run_degradation
from repro.topology.fattree import build_fat_tree


class TestDegrade:
    def test_removes_requested_fraction(self, fat8):
        degraded = degrade(fat8, 0.25, random.Random(0))
        assert degraded.num_cables == fat8.num_cables - 64

    def test_zero_fraction_identity(self, fat8):
        degraded = degrade(fat8, 0.0, random.Random(0))
        assert set(degraded.fabric.edges()) == set(fat8.fabric.edges())

    def test_original_untouched(self, fat8):
        before = fat8.num_cables
        degrade(fat8, 0.5, random.Random(0))
        assert fat8.num_cables == before

    def test_bad_fraction_rejected(self, fat8):
        with pytest.raises(ReproError):
            degrade(fat8, 1.0, random.Random(0))
        with pytest.raises(ReproError):
            degrade(fat8, -0.1, random.Random(0))

    def test_seeded_determinism(self):
        net = build_fat_tree(4)
        a = degrade(net, 0.2, random.Random(7))
        b = degrade(net, 0.2, random.Random(7))
        assert set(a.fabric.edges()) == set(b.fabric.edges())


class TestRunDegradation:
    def test_normalized_and_ordered(self):
        result = run_degradation(k=4, fractions=(0.0, 0.2), draws=2, seed=1)
        for series in result.series:
            assert series.points[0.0] == pytest.approx(1.0)
            assert 0.0 <= series.points[0.2] <= 1.0 + 1e-9

    def test_all_topologies_present(self):
        result = run_degradation(k=4, fractions=(0.0,), draws=1)
        labels = {s.label for s in result.series}
        assert labels == {"fat-tree", "flat-tree", "random graph"}
