"""Integration tests: each experiment reproduces the paper's shape.

These are the repository's acceptance tests.  They run the real
experiment pipelines at small k and assert the qualitative claims of the
paper's evaluation section (who wins, by roughly what factor) — not
absolute numbers, which depend on the substrate.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig5_pathlength import mn_for, run_fig5
from repro.experiments.fig6_pod_pathlength import run_fig6
from repro.experiments.fig7_broadcast import (
    incast_equals_broadcast,
    run_fig7,
)
from repro.experiments.fig8_alltoall import run_fig8
from repro.experiments.hybrid import hybrid_point
from repro.core.design import FlatTreeDesign
from repro.experiments.common import flat_tree_network
from repro.core.conversion import Mode


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5(ks=(4, 8, 12))

    def test_flat_tree_beats_fat_tree(self, result):
        flat = result.get("flat-tree(m=1k/8,n=2k/8)")
        fat = result.get("fat-tree")
        for k in flat.points:
            assert flat.points[k] < fat.points[k]

    def test_flat_tree_close_to_random(self, result):
        """Paper: within ~5%; we allow 10% at the small-k hard cases."""
        flat = result.get("flat-tree(m=1k/8,n=2k/8)")
        rnd = result.get("random graph")
        for k in flat.points:
            assert flat.points[k] <= rnd.points[k] * 1.10

    def test_random_graph_is_lowest(self, result):
        rnd = result.get("random graph")
        for series in result.series:
            for k, value in series.points.items():
                assert value >= rnd.points[k] - 1e-9

    def test_mn_for_rounding(self):
        assert mn_for(8, 1, 2) == (1, 2)
        assert mn_for(4, 1, 2) == (1, 1)
        assert mn_for(20, 1, 2) == (3, 5)


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6(ks=(4, 8, 12))

    def test_flat_tree_beats_fat_tree_in_pods(self, result):
        flat = result.get("flat-tree")
        fat = result.get("fat-tree")
        for k in (8, 12):
            assert flat.points[k] < fat.points[k]

    def test_random_graph_worst_in_pods(self, result):
        rnd = result.get("random graph")
        for series in result.series:
            if series.label == "random graph":
                continue
            for k, value in series.points.items():
                assert value < rnd.points[k]

    def test_flat_tree_competitive_with_two_stage(self, result):
        """Paper: flat-tree outperforms two-stage; randomness makes this
        a near-tie at tiny k, so assert within 5% and strictly ordered
        on aggregate."""
        flat = result.get("flat-tree")
        two = result.get("two-stage random graph")
        for k in flat.points:
            assert flat.points[k] <= two.points[k] * 1.05


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7(ks=(4, 6, 8))

    def test_flat_tree_at_least_fat_tree(self, result):
        """Strict win at k=8; at k=6 a random hotspot draw can land on a
        weak aggregation switch and tie fat-tree, so only non-strict."""
        for place in ("locality", "no locality"):
            flat = result.get(f"flat-tree {place}")
            fat = result.get(f"fat-tree {place}")
            assert flat.points[8] > fat.points[8]
            assert flat.points[6] >= fat.points[6] - 1e-12

    def test_flat_tree_factor_toward_1_5x(self, result):
        """Paper: 1.5x fat-tree; allow 1.2x+ at these tiny scales."""
        flat = result.get("flat-tree locality")
        fat = result.get("fat-tree locality")
        assert flat.points[8] >= 1.2 * fat.points[8]

    def test_flat_tree_close_to_random(self, result):
        flat = result.get("flat-tree locality").points[8]
        rnd = result.get("random graph locality").points[8]
        assert flat >= 0.8 * rnd

    def test_throughput_grows_with_k(self, result):
        for label in ("fat-tree locality", "flat-tree locality"):
            series = result.get(label)
            assert series.points[4] < series.points[8]

    def test_locality_insensitive(self, result):
        """None of the topologies is sensitive to locality (paper §3.3)."""
        for topo in ("fat-tree", "flat-tree", "random graph"):
            a = result.get(f"{topo} locality").points[8]
            b = result.get(f"{topo} no locality").points[8]
            assert a == pytest.approx(b, rel=0.35)

    def test_incast_symmetry(self):
        net = flat_tree_network(6, Mode.GLOBAL_RANDOM)
        assert incast_equals_broadcast(net, 6)


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig8(ks=(4, 6))

    def test_flat_tree_beats_fat_tree(self, result):
        for place in ("locality", "weak locality"):
            flat = result.get(f"flat-tree {place}")
            fat = result.get(f"fat-tree {place}")
            for k in flat.points:
                assert flat.points[k] >= fat.points[k]

    def test_flat_tree_at_least_two_stage_small_k(self, result):
        """Paper: flat-tree outperforms two-stage for k <= 14."""
        flat = result.get("flat-tree locality")
        two = result.get("two-stage random graph locality")
        for k in flat.points:
            assert flat.points[k] >= two.points[k] * 0.98

    def test_fat_tree_collapses_under_weak_locality_at_k8(self):
        """Paper: fat-tree's throughput drops under weak locality.

        At k <= 6 clusters barely fit in a Pod, so fragmentation can
        accidentally help; the claim stabilizes from k = 8 on.  Solve
        the two fat-tree LPs directly (cheap) instead of the full sweep.
        """
        import random

        from repro.experiments.common import baseline_networks, throughput_of
        from repro.experiments.fig8_alltoall import all_to_all_workload
        from repro.topology.clos import fat_tree_params

        params = fat_tree_params(8)
        fat = baseline_networks(8, seed=0)["fat-tree"]
        strong = throughput_of(
            fat, all_to_all_workload(params, "locality", random.Random(0))
        )
        weak = throughput_of(
            fat,
            all_to_all_workload(params, "weak locality", random.Random(0)),
        )
        assert weak < strong


class TestHybrid:
    def test_zone_isolation_at_one_point(self):
        """§3.4 at k=6, 50/50: combined ~ min(zone solves)."""
        design = FlatTreeDesign.for_fat_tree(6)
        row = hybrid_point(design, 0.5, seed=0)
        assert row.isolated
        assert row.combined == pytest.approx(
            min(row.global_zone, row.local_zone), rel=0.02
        )

    def test_zone_throughputs_positive(self):
        design = FlatTreeDesign.for_fat_tree(6)
        row = hybrid_point(design, 0.5, seed=1)
        assert row.global_zone > 0
        assert row.local_zone > 0
