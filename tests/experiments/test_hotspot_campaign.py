"""The hotspot campaign battery (tiny k so the suite stays fast)."""

from __future__ import annotations

import pytest

from repro import obs
from repro.experiments.hotspot_campaign import run_campaign
from repro.obs import hotspots
from repro.obs.sinks import MemorySink

STAGE_NAMES = ["build", "convert", "ksp", "mcf", "flowsim"]


@pytest.fixture()
def clean_bus():
    obs.disable()
    obs.registry.reset()
    yield
    obs.disable()
    obs.registry.reset()


def test_campaign_runs_all_stages_and_builds_a_valid_document(clean_bus):
    result = run_campaign(k=4, hz=331.0, seed=0, flows=24)
    assert [s["name"] for s in result.stages] == STAGE_NAMES
    for stage in result.stages:
        assert str(stage["span"]).startswith("hotspots.campaign/hotspots.")
        assert stage["wall_s"] >= 0.0
    document = hotspots.build_document(
        result.profile, result.stages, k=4, label="test")
    assert hotspots.validate_document(document) == []
    # The campaign enabled telemetry itself and restored it after.
    assert not obs.enabled()


def test_campaign_respects_an_already_enabled_bus(clean_bus):
    sink = MemorySink()
    obs.enable(sink)
    run_campaign(k=4, hz=331.0, seed=0, flows=24)
    assert obs.enabled()  # left on: the campaign did not own it
    names = {e.get("name") for e in sink.events if e.get("kind") == "event"}
    assert {"sampler.start", "sampler.flush", "sampler.stop"} <= names
    span_paths = {e.get("path") for e in sink.events
                  if e.get("kind") == "span"}
    for name in STAGE_NAMES:
        assert f"hotspots.campaign/hotspots.{name}" in span_paths
