"""Unit tests for the self-heal soak experiment."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.experiments.selfheal_soak import run_selfheal_soak


@pytest.fixture(scope="module")
def soak():
    return run_selfheal_soak(k=4, flows=24, seed=7)


class TestSelfHealSoak:
    def test_loop_heals_mid_run(self, soak):
        assert soak.repaired
        assert soak.t_repair > soak.t_fail
        assert soak.actions.get("heal", 0) >= 1

    def test_soaked_run_completes_all_flows(self, soak):
        assert len(soak.soaked.failed) == 0
        assert len(soak.soaked.completed) == len(soak.baseline.completed)

    def test_flows_reroute_through_the_incident(self, soak):
        # At least one in-flight flow crossed a topology swap.
        assert soak.soaked.rerouted >= 1
        assert soak.baseline.rerouted == 0

    def test_fault_strands_a_server_until_healed(self, soak):
        assert soak.stranded_degraded >= 1
        assert soak.stranded_healed == 0

    def test_ledger_records_the_heal(self, soak):
        succeeded = soak.ledger.by_status("succeeded")
        assert any(e.action == "heal" and e.rule == "link_failure"
                   for e in succeeded)

    def test_deterministic_for_seed(self, soak):
        again = run_selfheal_soak(k=4, flows=24, seed=7)
        assert again.table() == soak.table()
        assert again.ledger.to_json() == soak.ledger.to_json()

    def test_table_renders(self, soak):
        text = soak.table()
        assert "self-heal soak" in text
        assert "baseline" in text and "soaked" in text
        assert "fct tax" in text

    def test_validation(self):
        with pytest.raises(ReproError):
            run_selfheal_soak(k=3)
