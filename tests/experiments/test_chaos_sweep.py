"""Unit tests for the chaos sweep experiment."""

from __future__ import annotations

import pytest

from repro.core.reconfigure import MACH_ZEHNDER, MEMS_OPTICAL
from repro.errors import ConfigurationError
from repro.experiments.chaos_sweep import run_chaos_sweep


@pytest.fixture(scope="module")
def sweep():
    return run_chaos_sweep(
        k=4, rates=(0.0, 0.3), technologies=(MEMS_OPTICAL,),
        trials=2, seed=7,
    )


class TestChaosSweep:
    def test_zero_rate_always_succeeds(self, sweep):
        cell = sweep.cell(MEMS_OPTICAL.name, 0.0)
        assert cell.success_probability == 1.0
        assert cell.mean_added_time == pytest.approx(0.0)
        assert cell.rolled_back_fraction == 0.0
        assert cell.mean_retries == 0.0
        assert cell.path_inflation == pytest.approx(1.0)

    def test_faults_cost_time(self, sweep):
        cell = sweep.cell(MEMS_OPTICAL.name, 0.3)
        # Fault injection can only slow a conversion down.
        assert cell.mean_added_time >= 0.0
        assert cell.retries > 0 or cell.rolled_back > 0

    def test_deterministic_for_seed(self, sweep):
        again = run_chaos_sweep(
            k=4, rates=(0.0, 0.3), technologies=(MEMS_OPTICAL,),
            trials=2, seed=7,
        )
        assert again.table() == sweep.table()

    def test_seed_changes_outcomes(self, sweep):
        other = run_chaos_sweep(
            k=4, rates=(0.0, 0.3), technologies=(MEMS_OPTICAL,),
            trials=2, seed=8,
        )
        # The zero-rate rows agree (nothing to draw); the table as a
        # whole reflects the seed only through the faulted rows.
        assert other.cell(MEMS_OPTICAL.name, 0.0).success_probability == 1.0

    def test_table_renders_all_cells(self, sweep):
        text = sweep.table()
        assert "technology" in text and "success" in text
        assert text.count(MEMS_OPTICAL.name) == 2

    def test_multiple_technologies(self):
        result = run_chaos_sweep(
            k=4, rates=(0.0,), technologies=(MEMS_OPTICAL, MACH_ZEHNDER),
            trials=1, seed=0,
        )
        assert len(result.cells) == 2

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_chaos_sweep(k=4, trials=0)
        with pytest.raises(ConfigurationError):
            run_chaos_sweep(k=4, rates=(1.5,))
