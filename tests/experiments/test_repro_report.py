"""Unit tests for the one-command reproduction report."""

from __future__ import annotations

import pytest

from repro.experiments.report import (
    Report,
    ReportScale,
    generate_report,
    write_report,
)


@pytest.fixture(scope="module")
def quick_report():
    return generate_report(scale=ReportScale.quick(), seed=0, stamp=False)


class TestScales:
    def test_presets_distinct(self):
        assert ReportScale.quick().apl_ks != ReportScale.standard().apl_ks
        assert ReportScale.standard().hybrid_k == 8


class TestGenerate:
    def test_covers_all_experiments(self, quick_report):
        names = [r.experiment for r in quick_report.results]
        for needle in ("fig5", "fig6", "fig7", "fig8", "hybrid",
                       "link failures", "FCT"):
            assert any(needle in n for n in names), needle

    def test_no_timestamp_when_unstamped(self, quick_report):
        assert quick_report.timestamp is None

    def test_markdown_structure(self, quick_report):
        text = quick_report.to_markdown()
        assert text.startswith("# Flat-tree reproduction report")
        assert text.count("## ") == len(quick_report.results)
        assert text.count("```") == 2 * len(quick_report.results)

    def test_markdown_contains_tables(self, quick_report):
        text = quick_report.to_markdown()
        assert "fat-tree" in text
        assert "global zone" in text


class TestWrite:
    def test_writes_file(self, tmp_path, quick_report):
        # Re-rendering an existing report avoids re-running experiments.
        path = tmp_path / "report.md"
        path.write_text(quick_report.to_markdown())
        assert path.read_text().startswith("# Flat-tree")

    def test_write_report_end_to_end(self, tmp_path):
        path = tmp_path / "r.md"
        report = write_report(str(path), scale=ReportScale.quick(), seed=1)
        assert path.exists()
        assert len(report.results) == 7
        assert "generated:" in path.read_text()
