"""Unit tests for the flow-level FCT experiment."""

from __future__ import annotations

import pytest

from repro.core.reconfigure import MACH_ZEHNDER
from repro.errors import ReproError
from repro.experiments.fct import run_fct, run_fct_monitored


class TestRunFct:
    def test_series_per_mode_with_positive_fct(self):
        result = run_fct(ks=(4,), flows=12, seed=0)
        assert {s.label for s in result.series} == {"clos", "global-random"}
        for series in result.series:
            assert series.points[4] > 0

    def test_seed_reproducible(self):
        a = run_fct(ks=(4,), flows=12, seed=3)
        b = run_fct(ks=(4,), flows=12, seed=3)
        assert a.get("clos").points == b.get("clos").points

    def test_table_renders(self):
        result = run_fct(ks=(4,), flows=12, seed=0)
        table = result.table()
        assert "clos" in table and "global-random" in table


class TestRunFctMonitored:
    @pytest.fixture(scope="class")
    def run(self):
        return run_fct_monitored(k=4, flows=12, seed=0)

    def test_timeline_is_consistent(self, run):
        assert run.t_convert == pytest.approx(0.5 * run.before.makespan)
        assert run.t_restored == pytest.approx(
            run.t_convert + run.schedule.total_time
        )
        # Phase B arrivals are stamped after the conversion completes.
        assert min(c.start for c in run.after.completed) >= run.t_restored

    def test_ledger_cross_checks_schedule(self, run):
        downtime = run.monitor.downtime()
        assert downtime
        for dark in downtime.values():
            assert dark == pytest.approx(run.schedule.blink_window)

    def test_monitor_spans_both_phases(self, run):
        assert run.monitor.samples_taken >= 2
        _t0, t1 = run.monitor.time_range()
        assert t1 >= run.t_restored

    def test_disruption_and_dark_traffic_bounded(self, run):
        assert 0.0 <= run.disrupted_fraction <= 1.0
        assert run.dark_traffic >= 0.0
        # The conversion overlaps the Clos tail, so the MEMS 25 ms
        # blinks must intersect some in-flight flow lifetime.
        assert run.dark_traffic > 0.0

    def test_technology_changes_dark_traffic(self):
        mems = run_fct_monitored(k=4, flows=12, seed=0)
        mzi = run_fct_monitored(k=4, flows=12, seed=0,
                                technology=MACH_ZEHNDER)
        assert mzi.schedule.blink_window < mems.schedule.blink_window
        assert mzi.dark_traffic < mems.dark_traffic

    def test_too_few_flows_rejected(self):
        with pytest.raises(ReproError):
            run_fct_monitored(k=4, flows=1)
