"""Unit tests for the flow-level FCT experiment."""

from __future__ import annotations

from repro.experiments.fct import run_fct


class TestRunFct:
    def test_series_per_mode_with_positive_fct(self):
        result = run_fct(ks=(4,), flows=12, seed=0)
        assert {s.label for s in result.series} == {"clos", "global-random"}
        for series in result.series:
            assert series.points[4] > 0

    def test_seed_reproducible(self):
        a = run_fct(ks=(4,), flows=12, seed=3)
        b = run_fct(ks=(4,), flows=12, seed=3)
        assert a.get("clos").points == b.get("clos").points

    def test_table_renders(self):
        result = run_fct(ks=(4,), flows=12, seed=0)
        table = result.table()
        assert "clos" in table and "global-random" in table
