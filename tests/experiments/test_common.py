"""Unit tests for experiment plumbing (series, tables, dispatch)."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.experiments.common import (
    DEFAULT_APL_KS,
    ExperimentResult,
    PAPER_KS,
    Series,
    baseline_networks,
    flat_tree_network,
    ks_from_env,
    solve_throughput,
    throughput_of,
)
from repro.core.conversion import Mode
from repro.mcf.commodities import Commodity, build_flow_problem
from repro.topology.validate import assert_same_equipment


class TestSeriesAndResult:
    def make_result(self):
        result = ExperimentResult("exp", "k", "y")
        a = result.new_series("a")
        a.add(4, 1.0)
        a.add(8, 2.0)
        b = result.new_series("b")
        b.add(4, 3.0)
        return result

    def test_get_series(self):
        result = self.make_result()
        assert result.get("a").points[4] == 1.0
        with pytest.raises(KeyError):
            result.get("zzz")

    def test_xs_union(self):
        assert self.make_result().xs() == [4, 8]

    def test_table_renders_missing_as_dash(self):
        table = self.make_result().table()
        lines = table.splitlines()
        assert lines[0].split() == ["k", "a", "b"]
        assert "-" in lines[-1].split()

    def test_table_notes_appended(self):
        result = self.make_result()
        result.notes.append("hello")
        assert result.table().endswith("# hello")


class TestKsFromEnv:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_KS", raising=False)
        monkeypatch.delenv("REPRO_MAX_K", raising=False)
        assert ks_from_env(DEFAULT_APL_KS) == list(DEFAULT_APL_KS)

    def test_explicit_list(self, monkeypatch):
        monkeypatch.setenv("REPRO_KS", "4, 8 12")
        assert ks_from_env(DEFAULT_APL_KS) == [4, 8, 12]

    def test_max_k(self, monkeypatch):
        monkeypatch.delenv("REPRO_KS", raising=False)
        monkeypatch.setenv("REPRO_MAX_K", "10")
        assert ks_from_env(DEFAULT_APL_KS) == [k for k in PAPER_KS if k <= 10]


class TestFactories:
    def test_baselines_same_equipment(self):
        nets = baseline_networks(6, seed=0)
        assert_same_equipment(nets["fat-tree"], nets["random graph"])
        assert_same_equipment(nets["fat-tree"], nets["two-stage"])

    def test_flat_tree_network_modes(self):
        net = flat_tree_network(6, Mode.LOCAL_RANDOM)
        assert "local" in net.name


class TestSolverDispatch:
    def test_forced_methods_agree(self, triangle):
        problem = build_flow_problem(triangle, [Commodity(0, 1)])
        exact = solve_throughput(problem, force="exact")
        approx = solve_throughput(problem, force="approx", epsilon=0.05)
        assert approx <= exact + 1e-9
        assert approx >= 0.9 * exact

    def test_unknown_solver_rejected(self, triangle):
        problem = build_flow_problem(triangle, [Commodity(0, 1)])
        with pytest.raises(ReproError):
            solve_throughput(problem, force="magic")

    def test_auto_uses_exact_for_small(self, triangle):
        problem = build_flow_problem(triangle, [Commodity(0, 1)])
        assert solve_throughput(problem) == pytest.approx(2.0)

    def test_throughput_of_convenience(self, triangle):
        assert throughput_of(triangle, [Commodity(0, 1)]) == pytest.approx(2.0)
