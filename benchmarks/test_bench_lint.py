"""Tooling bench: whole-repo flatlint runtime stays inner-loop fast.

ISSUE 9 acceptance bar: the whole-program pass — parsing every
``.py`` file, building the symbol table and call graph, and running
all seven rules including the interprocedural FT006/FT007 analyses —
must finish the full repository in at most :data:`BUDGET_S` seconds.
The budget is deliberately loose (the pass runs in a few seconds on a
laptop) so only an algorithmic regression in the graph builder or a
reachability blow-up can trip it, not CI jitter.

The bench reports files, findings, edge count and wall time so the
BENCH trajectory records how analysis cost scales as the repo grows.
"""

from __future__ import annotations

import os
import sys
import time

from conftest import show

from repro.experiments.common import ExperimentResult

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Hard runtime ceiling for the whole-repo pass, in seconds.
BUDGET_S = 30.0

#: The same path set `make lint` checks.
LINT_PATHS = ("src", "tests", "tools", "benchmarks")


def run_whole_repo_lint() -> ExperimentResult:
    sys.path.insert(0, REPO_ROOT)
    try:
        from tools.flatlint import all_rules
        from tools.flatlint.engine import lint_paths
    finally:
        sys.path.pop(0)
    paths = [os.path.join(REPO_ROOT, p) for p in LINT_PATHS]
    begin = time.perf_counter()
    findings, project = lint_paths(paths, all_rules())
    edges = len(project.callgraph().edges)
    wall = time.perf_counter() - begin
    result = ExperimentResult(
        experiment="tooling: whole-repo flatlint runtime",
        x_label="files",
        y_label="wall-clock (s)",
    )
    result.new_series("flatlint").add(len(project.files), wall)
    result.notes.append(
        f"{len(project.files)} files, {len(findings)} finding(s), "
        f"{edges} call edges in {wall:.2f}s (budget {BUDGET_S:.0f}s)")
    return result


def test_bench_lint_runtime(once):
    result = once(run_whole_repo_lint)
    show(result)
    (files, wall), = result.get("flatlint").points.items()
    assert files > 100  # the pass really covered the repo
    assert wall <= BUDGET_S
