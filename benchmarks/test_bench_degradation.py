"""Extension bench: throughput degradation under random link failures.

Motivates §5's self-recovery: the converted flat-tree keeps more of its
capacity per failed link than the Clos hierarchy, whose hot-spot
capacity rides on few uplinks.
"""

from __future__ import annotations

import os

from conftest import show

from repro.experiments.degradation import run_degradation

BENCH_K = int(os.environ.get("REPRO_DEGRADATION_K", "8"))
FRACTIONS = (0.0, 0.05, 0.1, 0.2)


def test_bench_degradation(once):
    result = once(run_degradation, k=BENCH_K, fractions=FRACTIONS, draws=3)
    show(result)
    flat = result.get("flat-tree")
    fat = result.get("fat-tree")
    for series in result.series:
        # Repeated LP solves agree only to solver tolerance.
        assert abs(series.points[0.0] - 1.0) < 1e-6
        # Monotone non-increasing in expectation; allow draw noise.
        assert series.points[0.2] <= series.points[0.0] + 1e-6
    # The headline: flat-tree degrades no worse than fat-tree.
    assert flat.points[0.2] >= fat.points[0.2] - 0.05
