"""Benchmark harness configuration.

Each benchmark regenerates one paper artifact (figure/table) and prints
the reproduced table, so ``pytest benchmarks/ --benchmark-only`` doubles
as the repository's results generator:

* default parameters are laptop-fast (small k);
* set ``REPRO_KS="4 8 12"`` / ``REPRO_MAX_K=16`` to sweep further toward
  the paper's k = 32, and ``REPRO_SOLVER=approx`` to force the
  Garg-Könemann solver beyond exact-LP reach.

Experiments are seconds-long, so benches run one round by default
(pytest-benchmark's calibration would otherwise loop them for minutes).
"""

from __future__ import annotations

import json
import os

import pytest

from repro import obs

#: Reproduced tables are appended here (pytest captures stdout on
#: passing runs, so the file is the durable record of a bench session).
RESULTS_PATH = os.path.join(os.path.dirname(__file__), "RESULTS.txt")

#: Per-test registry snapshots from the last bench session, so BENCH
#: entries carry internal counters (solver iterations, repair loops,
#: cache hits), not just wall clock.  Set ``REPRO_TELEMETRY=0`` to
#: benchmark the disabled-mode fast path instead.
METRICS_PATH = os.path.join(os.path.dirname(__file__), "METRICS.json")

_snapshots: dict = {}


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        handle.write("# reproduced tables from the last benchmark run\n")
    collect = os.environ.get("REPRO_TELEMETRY", "1") != "0"
    if collect:
        obs.enable()  # metrics only: no sink, no per-event cost
    yield
    if collect:
        obs.disable()
        with open(METRICS_PATH, "w", encoding="utf-8") as handle:
            json.dump(_snapshots, handle, indent=1, sort_keys=True)
            handle.write("\n")


@pytest.fixture(autouse=True)
def _metrics_snapshot(request):
    """Isolate and record each bench's registry contents."""
    if not obs.enabled():
        yield
        return
    obs.registry.reset()
    yield
    snap = obs.registry.snapshot()
    if snap:
        _snapshots[request.node.nodeid] = snap


@pytest.fixture()
def once(benchmark):
    """Run a callable exactly once under the benchmark clock."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner


def show(result) -> None:
    """Print a reproduced table and append it to RESULTS.txt."""
    text = f"\n== {result.experiment} ==\n{result.table()}\n"
    print(text)
    with open(RESULTS_PATH, "a", encoding="utf-8") as handle:
        handle.write(text)
