"""Extension bench: two-stage flat-tree (the §2.1 multi-stage sketch).

Compares the composed two-layer network's average path length and
hot-spot throughput across layer-mode combinations.  Measured shape:
both layers defaulted reproduces the single-layer fat-tree numbers
exactly; converting the *lower* layer is what pays (servers move up and
outward); converting **only the upper** layer actually lengthens paths
— the lower aggregation uplinks get re-attached deeper in the upper
hierarchy while no traffic is positioned to exploit it.  That
asymmetry is the composition's own lesson: convert bottom-up.
"""

from __future__ import annotations

import random

from conftest import show

from repro.core.conversion import Mode
from repro.core.multistage import build_two_stage_flat_tree
from repro.experiments.common import ExperimentResult, throughput_of
from repro.mcf.commodities import Commodity
from repro.topology.stats import average_server_path_length

K_LOWER = 8
UPPER_PODS = 4
MODE_PAIRS = (
    ("clos/clos", Mode.CLOS, Mode.CLOS),
    ("global/clos", Mode.GLOBAL_RANDOM, Mode.CLOS),
    ("clos/global", Mode.CLOS, Mode.GLOBAL_RANDOM),
    ("global/global", Mode.GLOBAL_RANDOM, Mode.GLOBAL_RANDOM),
)


def hotspot_workload(num_servers: int, rng: random.Random):
    hotspot = rng.randrange(num_servers)
    return [
        Commodity(hotspot, s) for s in range(num_servers) if s != hotspot
    ]


def run_multistage() -> ExperimentResult:
    result = ExperimentResult(
        experiment=(
            f"extension: two-stage flat-tree, lower k={K_LOWER}, "
            f"{UPPER_PODS} upper Pods"
        ),
        x_label="metric (0=APL hops, 1=hotspot lambda)",
        y_label="value",
    )
    rng = random.Random(5)
    workload = None
    for label, lower, upper in MODE_PAIRS:
        net = build_two_stage_flat_tree(K_LOWER, UPPER_PODS, lower, upper)
        if workload is None:
            workload = hotspot_workload(net.num_servers, rng)
        series = result.new_series(label)
        series.add(0, average_server_path_length(net))
        series.add(1, throughput_of(net, workload))
    return result


def test_bench_multistage(once):
    result = once(run_multistage)
    show(result)
    base = result.get("clos/clos")
    full = result.get("global/global")
    # Converting both layers shortens paths and raises hot-spot capacity.
    assert full.points[0] < base.points[0]
    assert full.points[1] >= base.points[1]
    # Lower-layer conversion alone already helps the APL...
    assert result.get("global/clos").points[0] < base.points[0]
    # ... while upper-only conversion hurts it (see module docstring).
    assert result.get("clos/global").points[0] > base.points[0]
