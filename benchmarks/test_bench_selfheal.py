"""Extension bench: closed-loop remediation overhead over monitor-only.

ISSUE 8 acceptance bar: running the full self-heal loop — the health
aggregator *plus* the remediation engine polling after every batch —
may tax a monitored trace drain by at most 5% of its monitor-only wall
time.  As with the health bench, differencing two full simulator runs
cannot resolve 5% on a noisy CI box, so the bench drains one captured
event stream twice at its natural stability:

* monitor-only — the stream pushed through the bare ``NullSink``;
* loop-attached — the same stream fed to a self-heal aggregator with
  the :class:`~repro.selfheal.engine.RemediationEngine` polled per
  event batch (the live-loop cadence), best of ``ROUNDS`` sweeps.
"""

from __future__ import annotations

import time

from conftest import show

from repro.experiments.common import ExperimentResult
from repro.obs.sinks import MemorySink, NullSink
from repro.selfheal.engine import RemediationEngine, new_selfheal_aggregator
from test_bench_health import monitored_run

BENCH_K = 8

#: ISSUE 8 acceptance bar, mirroring the health plane's: the closed
#: loop may tax the drain by at most this fraction, plus a small
#: absolute floor so a millisecond hiccup cannot fail the gate.
OVERHEAD_FRACTION = 0.05
JITTER_FLOOR_S = 0.01
ROUNDS = 5

#: Engine poll cadence, in events — the live loop polls per tail
#: batch, not per event; 64 models a busy tail read.
POLL_EVERY = 64


def loop_tax(events) -> tuple:
    """Seconds the closed loop adds to draining *events*, plus stats."""
    null = NullSink()
    forward_times = []
    loop_times = []
    engine = None
    aggregator = None
    for _ in range(ROUNDS):
        emit = null.emit
        begin = time.perf_counter()
        for event in events:
            emit(event)
        forward_times.append(time.perf_counter() - begin)

        aggregator = new_selfheal_aggregator()
        engine = RemediationEngine()
        emit = null.emit
        begin = time.perf_counter()
        for index, event in enumerate(events):
            emit(event)
            aggregator.consume(event)
            if index % POLL_EVERY == 0:
                engine.poll(aggregator)
        aggregator.finish()
        engine.poll(aggregator)
        loop_times.append(time.perf_counter() - begin)
    return (max(0.0, min(loop_times) - min(forward_times)),
            aggregator, engine)


def run_overhead_comparison() -> ExperimentResult:
    result = ExperimentResult(
        experiment="extension: self-heal loop overhead",
        x_label="k",
        y_label="wall-clock (s)",
    )
    monitored_run(NullSink())  # warm-up, discarded
    bare = min(monitored_run(NullSink())[0] for _ in range(ROUNDS))
    _, events = monitored_run(MemorySink())
    tax, aggregator, engine = loop_tax(events)
    result.new_series("monitor-only").add(BENCH_K, bare)
    result.new_series("selfheal-attached").add(BENCH_K, bare + tax)
    result.notes.append(
        f"best of {ROUNDS}; loop consumed {aggregator.events} events, "
        f"ledgered {len(engine.ledger)} decision(s) "
        f"for +{tax * 1000:.2f} ms ({tax / bare:+.1%} of monitor-only)"
    )
    return result


def test_bench_selfheal_overhead(once):
    result = once(run_overhead_comparison)
    show(result)
    bare = result.get("monitor-only").points[BENCH_K]
    judged = result.get("selfheal-attached").points[BENCH_K]
    assert judged - bare <= bare * OVERHEAD_FRACTION + JITTER_FLOOR_S
