"""Extension bench: health-plane aggregation overhead on the bus.

The health plane's contract is stricter than the monitor's: attaching
the streaming aggregator tees every wire event through
``HealthAggregator.consume`` in-process, and that tax must stay within
5% of the monitor-only wall time (ISSUE 6 acceptance bar).

Differencing two full simulator runs cannot resolve 5% on a noisy CI
box (scheduler jitter alone exceeds it), so the bench measures the two
quantities separately, each at its own natural stability:

* the monitor-only wall time — the monitored hot-spot workload, best
  of ``ROUNDS`` runs;
* the aggregator tax — the same run's captured event stream pushed
  through a ``HealthSink`` tee versus through the bare ``NullSink``,
  best of ``ROUNDS`` sweeps.  The difference is exactly the work
  :func:`repro.health.attach` adds to the bus.
"""

from __future__ import annotations

import random
import time

from conftest import show

from repro import health, obs
from repro.core.controller import Controller
from repro.core.conversion import Mode
from repro.core.design import FlatTreeDesign
from repro.core.flattree import FlatTree
from repro.experiments.common import ExperimentResult
from repro.flowsim.simulator import FlowSimulator, FlowSpec
from repro.monitor import NetworkMonitor
from repro.obs.sinks import MemorySink, NullSink

BENCH_K = 8
FLOWS = 120

#: ISSUE 6 acceptance bar: the aggregator may tax a monitored run by at
#: most this fraction of its monitor-only wall time, plus a small
#: absolute floor so a millisecond-scale hiccup on a fast run cannot
#: fail the gate spuriously.
OVERHEAD_FRACTION = 0.05
JITTER_FLOOR_S = 0.01
ROUNDS = 5


def hotspot_flows(params, rng) -> list:
    servers = list(range(params.num_servers))
    hotspot = rng.choice(servers)
    specs = []
    fid = 0
    for dst in rng.sample([s for s in servers if s != hotspot], FLOWS // 2):
        specs.append(FlowSpec(fid, hotspot, dst, size=1.0))
        fid += 1
    while fid < FLOWS:
        a, b = rng.sample(servers, 2)
        specs.append(FlowSpec(fid, a, b, size=1.0))
        fid += 1
    return specs


def monitored_run(sink):
    """One monitored hot-spot workload; returns (wall time, events)."""
    design = FlatTreeDesign.for_fat_tree(BENCH_K)
    controller = Controller(FlatTree(design))
    controller.apply_mode(Mode.GLOBAL_RANDOM)
    flows = hotspot_flows(design.params, random.Random(7))
    monitor = NetworkMonitor(controller.network)
    simulator = FlowSimulator(controller.network, controller.route,
                              monitor=monitor)
    obs.disable()
    obs.enable(sink, emit_metric_events=True)
    try:
        begin = time.perf_counter()
        simulator.run(flows)
        elapsed = time.perf_counter() - begin
    finally:
        obs.disable()
        obs.enable()  # restore the harness's metrics-only session mode
    return elapsed, getattr(sink, "events", None)


def aggregator_tax(events) -> tuple:
    """Seconds HealthSink adds to draining *events*, and the aggregator."""
    null = NullSink()
    forward_times = []
    tee_times = []
    aggregator = None
    for _ in range(ROUNDS):
        emit = null.emit
        begin = time.perf_counter()
        for event in events:
            emit(event)
        forward_times.append(time.perf_counter() - begin)

        aggregator = health.new_aggregator()
        emit = health.HealthSink(null, aggregator).emit
        begin = time.perf_counter()
        for event in events:
            emit(event)
        aggregator.finish()
        tee_times.append(time.perf_counter() - begin)
    return max(0.0, min(tee_times) - min(forward_times)), aggregator


def run_overhead_comparison() -> ExperimentResult:
    result = ExperimentResult(
        experiment="extension: health-plane aggregation overhead",
        x_label="k",
        y_label="wall-clock (s)",
    )
    monitored_run(NullSink())  # warm-up, discarded
    bare = min(monitored_run(NullSink())[0] for _ in range(ROUNDS))
    _, events = monitored_run(MemorySink())
    tax, aggregator = aggregator_tax(events)
    result.new_series("monitor-only").add(BENCH_K, bare)
    result.new_series("health-attached").add(BENCH_K, bare + tax)
    result.notes.append(
        f"{FLOWS} flows, best of {ROUNDS}; aggregator consumed "
        f"{aggregator.events} events over {len(aggregator.links)} links "
        f"for +{tax * 1000:.2f} ms ({tax / bare:+.1%} of monitor-only)"
    )
    return result


def test_bench_health_overhead(once):
    result = once(run_overhead_comparison)
    show(result)
    bare = result.get("monitor-only").points[BENCH_K]
    judged = result.get("health-attached").points[BENCH_K]
    assert judged - bare <= bare * OVERHEAD_FRACTION + JITTER_FLOOR_S
