"""Tooling bench: the differential plane stays inner-loop fast.

The diff and trend engines run on every ``make bench-compare`` /
``make trend-smoke``, so they must stay cheap even on inputs far
larger than the repo currently records: a span-tree diff over two
synthetic ~10k-node profiles plus a trajectory analysis over dozens
of synthetic sessions x hundreds of metrics must finish inside
:data:`BUDGET_S`.  The budget is deliberately loose so only an
algorithmic blow-up (quadratic alignment, per-point window rescans
going superlinear) can trip it, not CI jitter.
"""

from __future__ import annotations

import time

from conftest import show

from repro.experiments.common import ExperimentResult
from repro.obs import diffprof, trend
from repro.obs.perf import Profile

#: Hard runtime ceiling for both engines together, in seconds.
BUDGET_S = 10.0

#: Span-tree fan-out: ROOTS x CHILDREN x LEAVES nodes per profile.
ROOTS, CHILDREN, LEAVES = 10, 33, 30

#: Trajectory size: sessions x metrics series points.
SESSIONS, METRICS = 48, 300


def synthetic_profile(scale: float) -> Profile:
    events = []
    span_id = 0
    for r in range(ROOTS):
        span_id += 1
        root_id = span_id
        root_path = f"root{r}"
        for c in range(CHILDREN):
            span_id += 1
            child_id = span_id
            child_path = f"{root_path}/phase{c}"
            for leaf in range(LEAVES):
                span_id += 1
                events.append({
                    "ts": 1.0, "kind": "span", "name": f"leaf{leaf}",
                    "path": f"{child_path}/leaf{leaf}", "depth": 2,
                    "span_id": span_id, "parent_id": child_id,
                    "duration_s": 0.001 * scale * (leaf + 1),
                })
            events.append({
                "ts": 1.0, "kind": "span", "name": f"phase{c}",
                "path": child_path, "depth": 1, "span_id": child_id,
                "parent_id": root_id,
                "duration_s": 0.001 * scale * LEAVES * (LEAVES + 1) / 2,
            })
        events.append({
            "ts": 1.0, "kind": "span", "name": f"root{r}",
            "path": root_path, "depth": 0, "span_id": root_id,
            "parent_id": None, "duration_s": 10.0 * scale,
        })
    return Profile.from_events(events)


def synthetic_trajectory() -> dict:
    series = {}
    for m in range(METRICS):
        base = 0.1 + (m % 17) * 0.05
        series[f"bench:mod{m % 9}.py::bench{m}"] = [
            trend.SeriesPoint(
                seq=s + 1, label=f"BENCH_{s + 1}.json",
                value=base * (1.0 + 0.05 * ((s * 7 + m) % 5 - 2)))
            for s in range(SESSIONS)
        ]
    return series


def run_differential_plane() -> ExperimentResult:
    begin = time.perf_counter()
    base = synthetic_profile(1.0)
    new = synthetic_profile(1.3)
    diff = diffprof.diff_profiles(base, new)
    folded = diffprof.subtract_folded(
        diffprof.parse_folded(base.folded()),
        diffprof.parse_folded(new.folded()))
    diff_wall = time.perf_counter() - begin

    begin = time.perf_counter()
    trajectory = synthetic_trajectory()
    trends = [trend.analyze_series(metric, points)
              for metric, points in sorted(trajectory.items())]
    trend_wall = time.perf_counter() - begin

    result = ExperimentResult(
        experiment="tooling: differential perf plane runtime",
        x_label="aligned paths / metric series",
        y_label="wall-clock (s)",
    )
    result.new_series("span-tree diff").add(len(diff.deltas), diff_wall)
    result.new_series("trend engine").add(len(trends), trend_wall)
    result.notes.append(
        f"diff: {len(diff.deltas)} paths, {len(folded)} folded stacks "
        f"in {diff_wall:.2f}s; trend: {len(trends)} metrics x "
        f"{SESSIONS} sessions in {trend_wall:.2f}s "
        f"(budget {BUDGET_S:.0f}s combined)")
    return result


def test_bench_diffprof_runtime(once):
    result = once(run_differential_plane)
    show(result)
    (paths, diff_wall), = result.get("span-tree diff").points.items()
    (metrics, trend_wall), = result.get("trend engine").points.items()
    assert paths > 10_000  # the diff really aligned both big trees
    assert metrics == METRICS
    assert diff_wall + trend_wall <= BUDGET_S
