"""Extension bench: flow-level FCT across operating modes.

The LP benches measure capacity under optimal routing; this bench runs
the fluid flow-level simulator (KSP routing, max-min fairness) on the
same cluster workload in each operating mode and reports mean flow
completion time.  The LP trend should survive routing realism: the
random-graph modes finish the broadcast-heavy workload faster than Clos.
"""

from __future__ import annotations

import random

from conftest import show

from repro.core.controller import Controller
from repro.core.conversion import Mode
from repro.core.design import FlatTreeDesign
from repro.core.flattree import FlatTree
from repro.experiments.common import ExperimentResult
from repro.flowsim.simulator import FlowSimulator, FlowSpec

BENCH_K = 8
FLOWS = 120


def cluster_flows(params, rng) -> list:
    """Unit-size flows from one hotspot plus background pairs."""
    servers = list(range(params.num_servers))
    hotspot = rng.choice(servers)
    specs = []
    fid = 0
    for dst in rng.sample([s for s in servers if s != hotspot], FLOWS // 2):
        specs.append(FlowSpec(fid, hotspot, dst, size=1.0))
        fid += 1
    while fid < FLOWS:
        a, b = rng.sample(servers, 2)
        specs.append(FlowSpec(fid, a, b, size=1.0))
        fid += 1
    return specs


def simulate_mode(mode: Mode) -> float:
    design = FlatTreeDesign.for_fat_tree(BENCH_K)
    controller = Controller(FlatTree(design))
    controller.apply_mode(mode)
    flows = cluster_flows(design.params, random.Random(7))
    simulator = FlowSimulator(controller.network, controller.route)
    return simulator.run(flows).mean_fct


def run_fct_comparison() -> ExperimentResult:
    result = ExperimentResult(
        experiment="extension: mean FCT by operating mode (fluid sim)",
        x_label="k",
        y_label="mean flow completion time",
    )
    for mode in (Mode.CLOS, Mode.GLOBAL_RANDOM, Mode.LOCAL_RANDOM):
        result.new_series(mode.value).add(BENCH_K, simulate_mode(mode))
    return result


def test_bench_fct_by_mode(once):
    result = once(run_fct_comparison)
    show(result)
    clos = result.get("clos").points[BENCH_K]
    global_random = result.get("global-random").points[BENCH_K]
    # Hotspot-heavy traffic: the converted network's extra hotspot
    # capacity must show up as faster completions.
    assert global_random <= clos * 1.05
