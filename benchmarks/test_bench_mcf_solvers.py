"""Ablation bench: exact LP vs Garg-Könemann approximation.

Times both solvers on the same Figure-7-style workload and checks the
approximation's certified throughput lands within its (1 - ε) guarantee
of the LP optimum.  This is the measurement behind DESIGN.md's solver
dispatch threshold.
"""

from __future__ import annotations

import random

import pytest
from conftest import show

from repro.experiments.common import ExperimentResult
from repro.experiments.fig7_broadcast import broadcast_workload
from repro.mcf.approx import solve_concurrent_approx
from repro.mcf.commodities import build_flow_problem
from repro.mcf.exact import solve_concurrent_exact
from repro.topology.clos import fat_tree_params
from repro.topology.fattree import build_fat_tree

EPSILON = 0.08
BENCH_K = 8


def solve_both(k: int):
    params = fat_tree_params(k)
    net = build_fat_tree(k)
    workload = broadcast_workload(params, "locality", random.Random(0))
    problem = build_flow_problem(net, workload)
    exact = solve_concurrent_exact(problem).throughput
    approx = solve_concurrent_approx(problem, epsilon=EPSILON).throughput
    return exact, approx


def test_bench_exact_solver(benchmark):
    params = fat_tree_params(BENCH_K)
    net = build_fat_tree(BENCH_K)
    problem = build_flow_problem(
        net, broadcast_workload(params, "locality", random.Random(0))
    )
    result = benchmark.pedantic(
        solve_concurrent_exact, args=(problem,), rounds=3, iterations=1
    )
    assert result.throughput > 0


def test_bench_approx_solver(benchmark):
    params = fat_tree_params(BENCH_K)
    net = build_fat_tree(BENCH_K)
    problem = build_flow_problem(
        net, broadcast_workload(params, "locality", random.Random(0))
    )
    result = benchmark.pedantic(
        solve_concurrent_approx,
        args=(problem,),
        kwargs={"epsilon": EPSILON},
        rounds=1,
        iterations=1,
    )
    assert result.throughput > 0


def test_bench_solver_agreement(once):
    exact, approx = once(solve_both, BENCH_K)
    table = ExperimentResult(
        experiment=f"ablation: solver agreement, k={BENCH_K} broadcast",
        x_label="k",
        y_label="throughput (lambda)",
    )
    table.new_series("exact LP").add(BENCH_K, exact)
    table.new_series("Garg-Konemann").add(BENCH_K, approx)
    show(table)
    assert approx <= exact + 1e-9
    assert approx >= (1 - 2 * EPSILON) * exact
    assert exact == pytest.approx(approx, rel=2 * EPSILON)
