"""Ablation bench: Pod-core wiring pattern 1 vs pattern 2 (paper §2.3).

The paper motivates two rotation patterns and a per-k selection rule.
This ablation regenerates the APL of both patterns across k, plus the
pattern our :func:`repro.core.wiring.profiled_pattern` rule selects,
and asserts the rule never loses to the worse fixed pattern.
"""

from __future__ import annotations

from conftest import show

from repro.core.conversion import Mode, convert
from repro.core.design import FlatTreeDesign
from repro.core.flattree import FlatTree
from repro.core.wiring import WiringPattern, pattern_is_degenerate
from repro.errors import ReproError
from repro.experiments.common import ExperimentResult, ks_from_env
from repro.topology.stats import average_server_path_length

DEFAULT_KS = (4, 6, 8, 10, 12, 16)


def run_wiring_ablation(ks=None) -> ExperimentResult:
    ks = ks or ks_from_env(DEFAULT_KS)
    result = ExperimentResult(
        experiment="ablation: wiring pattern 1 vs 2 (global-random APL)",
        x_label="k",
        y_label="average path length (hops)",
    )
    series = {
        WiringPattern.PATTERN1: result.new_series("pattern 1"),
        WiringPattern.PATTERN2: result.new_series("pattern 2"),
    }
    selected = result.new_series("profiled selection")
    for k in ks:
        for pattern, s in series.items():
            try:
                design = FlatTreeDesign.for_fat_tree(k, pattern=pattern)
            except ReproError:
                continue
            if pattern_is_degenerate(design.params, design.m, pattern):
                continue  # disconnects cores; no APL exists
            net = convert(FlatTree(design), Mode.GLOBAL_RANDOM)
            s.add(k, average_server_path_length(net))
        auto = FlatTreeDesign.for_fat_tree(k)
        net = convert(FlatTree(auto), Mode.GLOBAL_RANDOM)
        selected.add(k, average_server_path_length(net))
    result.notes.append(
        "profiled selection must track min(pattern 1, pattern 2)"
    )
    return result


def test_bench_wiring_ablation(once):
    result = once(run_wiring_ablation)
    show(result)
    p1 = result.get("pattern 1")
    p2 = result.get("pattern 2")
    sel = result.get("profiled selection")
    for k in sel.points:
        candidates = [
            s.points[k] for s in (p1, p2) if k in s.points
        ]
        assert sel.points[k] <= min(candidates) + 1e-9
