"""Ablation bench: ring vs line inter-Pod side wiring.

The paper only says side bundles connect "adjacent Pods"; DESIGN.md
motivates closing them into a ring (no wasted connectors).  This
ablation quantifies the choice.  Measured outcome: the ring wins from
k = 6 on; at k = 4 the line layout is marginally *shorter* because the
unpaired end-blades fall back to the ``local`` configuration, whose
core-edge links happen to beat peer links in a 4-Pod network.  The
assertion below encodes exactly that.
"""

from __future__ import annotations

from conftest import show

from repro.core.conversion import Mode, convert
from repro.core.design import FlatTreeDesign
from repro.core.flattree import FlatTree
from repro.experiments.common import ExperimentResult, ks_from_env
from repro.topology.stats import average_server_path_length

DEFAULT_KS = (4, 6, 8, 10, 12)


def run_interpod_ablation(ks=None) -> ExperimentResult:
    ks = ks or ks_from_env(DEFAULT_KS)
    result = ExperimentResult(
        experiment="ablation: ring vs line side bundles (global-random APL)",
        x_label="k",
        y_label="average path length (hops)",
    )
    ring = result.new_series("ring")
    line = result.new_series("line")
    for k in ks:
        for series, use_ring in ((ring, True), (line, False)):
            design = FlatTreeDesign.for_fat_tree(k, ring=use_ring)
            net = convert(FlatTree(design), Mode.GLOBAL_RANDOM)
            series.add(k, average_server_path_length(net))
    return result


def test_bench_interpod_ablation(once):
    result = once(run_interpod_ablation)
    show(result)
    ring = result.get("ring")
    line = result.get("line")
    for k in ring.points:
        if k >= 6:
            assert ring.points[k] <= line.points[k] + 1e-9
        else:
            # Tiny-network exception, see module docstring.
            assert ring.points[k] <= line.points[k] * 1.03
