"""Extension bench: sampling-profiler overhead on a flowsim workload.

The ISSUE 7 acceptance bar: running a workload under
:class:`repro.obs.sampler.SamplingProfiler` at its default 97 Hz may
tax the wall time by at most 5%.  Statistical sampling only pauses the
target thread while ``sys._current_frames()`` snapshots it, so the tax
should be far below that bar; this bench keeps it honest.

Both sides are measured best-of-``ROUNDS`` on the same hot-spot flowsim
workload used by the health bench, plus a small absolute jitter floor
so a millisecond hiccup on a fast box cannot fail the gate spuriously.
"""

from __future__ import annotations

import random
import time

from conftest import show

from repro.core.controller import Controller
from repro.core.conversion import Mode
from repro.core.design import FlatTreeDesign
from repro.core.flattree import FlatTree
from repro.experiments.common import ExperimentResult
from repro.flowsim.simulator import FlowSimulator, FlowSpec
from repro.obs.sampler import DEFAULT_HZ, SamplingProfiler

BENCH_K = 8
FLOWS = 120

#: ISSUE 7 acceptance bar: sampler-on wall time may exceed sampler-off
#: by at most this fraction, plus the jitter floor.
OVERHEAD_FRACTION = 0.05
JITTER_FLOOR_S = 0.01
ROUNDS = 5


def hotspot_flows(params, rng) -> list:
    servers = list(range(params.num_servers))
    hotspot = rng.choice(servers)
    specs = []
    fid = 0
    for dst in rng.sample([s for s in servers if s != hotspot], FLOWS // 2):
        specs.append(FlowSpec(fid, hotspot, dst, size=1.0))
        fid += 1
    while fid < FLOWS:
        a, b = rng.sample(servers, 2)
        specs.append(FlowSpec(fid, a, b, size=1.0))
        fid += 1
    return specs


def flowsim_run(profiler=None) -> float:
    design = FlatTreeDesign.for_fat_tree(BENCH_K)
    controller = Controller(FlatTree(design))
    controller.apply_mode(Mode.GLOBAL_RANDOM)
    flows = hotspot_flows(design.params, random.Random(7))
    simulator = FlowSimulator(controller.network, controller.route)
    if profiler is not None:
        profiler.start()
    begin = time.perf_counter()
    simulator.run(flows)
    elapsed = time.perf_counter() - begin
    if profiler is not None:
        profiler.stop()
    return elapsed


def run_overhead_comparison() -> ExperimentResult:
    result = ExperimentResult(
        experiment="extension: sampling-profiler overhead",
        x_label="k",
        y_label="wall-clock (s)",
    )
    flowsim_run()  # warm-up, discarded
    bare = min(flowsim_run() for _ in range(ROUNDS))
    sampled_times = []
    samples = 0
    for _ in range(ROUNDS):
        profiler = SamplingProfiler(hz=DEFAULT_HZ)
        sampled_times.append(flowsim_run(profiler))
        samples = max(samples, profiler.profile.samples)
    sampled = min(sampled_times)
    result.new_series("sampler-off").add(BENCH_K, bare)
    result.new_series("sampler-on").add(BENCH_K, sampled)
    result.notes.append(
        f"{FLOWS} flows, best of {ROUNDS}; {DEFAULT_HZ:g} Hz captured "
        f"up to {samples} samples for "
        f"{(sampled - bare) / bare:+.1%} vs sampler-off"
    )
    return result


def test_bench_sampler_overhead(once):
    result = once(run_overhead_comparison)
    show(result)
    bare = result.get("sampler-off").points[BENCH_K]
    sampled = result.get("sampler-on").points[BENCH_K]
    assert sampled - bare <= bare * OVERHEAD_FRACTION + JITTER_FLOOR_S
