"""Ablation bench: conversion cost — churn and materialization time.

Convertibility is the paper's whole point; this bench quantifies what a
conversion costs at the physical layer (converters re-programmed, links
blinked, servers relocated) and how long planning + materialization
takes, across k.  The structural assertions pin the churn arithmetic:
a full Clos -> global-random conversion touches every converter, i.e.
``pods * d * (m + n)`` circuits.
"""

from __future__ import annotations

from conftest import show

from repro.core.controller import Controller
from repro.core.conversion import Mode
from repro.core.design import FlatTreeDesign
from repro.core.flattree import FlatTree
from repro.experiments.common import ExperimentResult, ks_from_env

DEFAULT_KS = (4, 8, 12, 16)


def run_conversion_costs(ks=None) -> ExperimentResult:
    ks = ks or ks_from_env(DEFAULT_KS)
    result = ExperimentResult(
        experiment="ablation: Clos -> global-random conversion churn",
        x_label="k",
        y_label="count",
    )
    converters = result.new_series("converters re-programmed")
    links = result.new_series("links blinked")
    moved = result.new_series("servers relocated")
    for k in ks:
        design = FlatTreeDesign.for_fat_tree(k)
        controller = Controller(FlatTree(design))
        plan = controller.apply_mode(Mode.GLOBAL_RANDOM)
        converters.add(k, plan.converter_count)
        links.add(k, len(plan.links_removed))
        moved.add(k, len(plan.servers_moved))
        expected = design.params.pods * design.params.d * (design.m + design.n)
        assert plan.converter_count == expected
        assert len(plan.servers_moved) == expected
    return result


def test_bench_conversion_churn(once):
    result = once(run_conversion_costs)
    show(result)
    converters = result.get("converters re-programmed")
    ks = sorted(converters.points)
    # Churn grows superlinearly in k (pods * d * (m + n) ~ k^3/16).
    assert converters.points[ks[-1]] > converters.points[ks[0]]


def test_bench_materialize_speed(benchmark):
    """Raw materialization cost of a k=16 flat-tree (1280 circuits)."""
    ft = FlatTree(FlatTreeDesign.for_fat_tree(16))
    net = benchmark(ft.materialize)
    assert net.num_servers == 16**3 // 4
