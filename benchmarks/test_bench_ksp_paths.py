"""Ablation bench: how many shortest paths does flat-tree routing need?

Jellyfish (the paper's routing citation for random-graph modes) found
that 8 shortest paths capture most of a random graph's capacity when
connections can *split* across them (MPTCP-style subflows).  This
ablation repeats that measurement on the converted flat-tree: each
permutation pair opens one subflow on each of its j shortest paths for
j = 1, 2, 4, 8, and the max-min fair total throughput is compared
against the optimal-routing LP value.

Expected shape: a steep gain from 1 path to a few, then saturation
toward (but below) the LP bound — justifying the controller's KSP-8
default.  (With single-path hash routing the trend *reverses* — longer
alternates waste capacity — which is exactly why the routing layer
keeps whole path sets per pair rather than pinning one.)
"""

from __future__ import annotations

import random

from conftest import show

from repro.core.conversion import Mode, convert
from repro.core.design import FlatTreeDesign
from repro.core.flattree import FlatTree
from repro.experiments.common import ExperimentResult, throughput_of
from repro.flowsim.fairshare import RoutedFlow, max_min_fair_rates
from repro.routing.ksp import k_shortest_paths
from repro.traffic.patterns import permutation_commodities

BENCH_K = 8
PATH_COUNTS = (1, 2, 4, 8)


def run_ksp_ablation() -> ExperimentResult:
    design = FlatTreeDesign.for_fat_tree(BENCH_K)
    net = convert(FlatTree(design), Mode.GLOBAL_RANDOM)
    rng = random.Random(3)
    workload = permutation_commodities(
        list(range(design.params.num_servers)), rng
    )

    result = ExperimentResult(
        experiment="ablation: KSP path count vs permutation throughput",
        x_label="paths per pair",
        y_label="total max-min throughput",
    )
    routed = result.new_series("ksp routing")
    optimal = result.new_series("LP optimal routing (x pairs)")
    lp_lambda = throughput_of(net, workload)
    pairs = _switch_pairs(net, workload)

    for count in PATH_COUNTS:
        flows = []
        fid = 0
        for src_sw, dst_sw in pairs:
            for path in k_shortest_paths(net, src_sw, dst_sw, k=count):
                flows.append(RoutedFlow(fid, path))
                fid += 1
        total = max_min_fair_rates(net, flows).total
        routed.add(count, total)
        optimal.add(count, lp_lambda * len(pairs))
    return result


def _switch_pairs(net, workload):
    pairs = []
    for commodity in workload:
        src_sw = net.server_switch(commodity.src)
        dst_sw = net.server_switch(commodity.dst)
        if src_sw != dst_sw:
            pairs.append((src_sw, dst_sw))
    return pairs


def test_bench_ksp_path_count(once):
    result = once(run_ksp_ablation)
    show(result)
    routed = result.get("ksp routing")
    optimal = result.get("LP optimal routing (x pairs)")
    # With subflow splitting, more paths monotonically add capacity.
    assert routed.points[8] >= routed.points[4] >= routed.points[1]
    # KSP-8 subflows reach a solid fraction of optimal routing.
    assert routed.points[8] >= 0.5 * optimal.points[8]
