"""Bench: Figure 6 — average path length within Pods.

Shape: flat-tree (local-random mode) and two-stage sit well below
fat-tree, random graph is worst.
"""

from __future__ import annotations

from conftest import show

from repro.experiments.fig6_pod_pathlength import run_fig6


def test_bench_fig6(once):
    result = once(run_fig6)
    show(result)
    flat = result.get("flat-tree")
    fat = result.get("fat-tree")
    rnd = result.get("random graph")
    two = result.get("two-stage random graph")
    for k in flat.points:
        assert flat.points[k] <= two.points[k] * 1.05
        assert flat.points[k] < rnd.points[k]
        assert fat.points[k] < rnd.points[k]
