"""Extension bench: monitoring-plane overhead on the fluid simulator.

The monitor's contract is pay-for-use: a flowsim run with no monitor
attached must cost the same as before the monitoring plane existed
(``monitor=None`` fast paths), and an attached monitor should tax the
event loop modestly, not multiply it.  This bench times the same
hot-spot workload bare and monitored and records the ratio.
"""

from __future__ import annotations

import random
import time

from conftest import show

from repro.core.controller import Controller
from repro.core.conversion import Mode
from repro.core.design import FlatTreeDesign
from repro.core.flattree import FlatTree
from repro.experiments.common import ExperimentResult
from repro.flowsim.simulator import FlowSimulator, FlowSpec
from repro.monitor import NetworkMonitor

BENCH_K = 8
FLOWS = 120


def hotspot_flows(params, rng) -> list:
    servers = list(range(params.num_servers))
    hotspot = rng.choice(servers)
    specs = []
    fid = 0
    for dst in rng.sample([s for s in servers if s != hotspot], FLOWS // 2):
        specs.append(FlowSpec(fid, hotspot, dst, size=1.0))
        fid += 1
    while fid < FLOWS:
        a, b = rng.sample(servers, 2)
        specs.append(FlowSpec(fid, a, b, size=1.0))
        fid += 1
    return specs


def timed_run(monitored: bool):
    design = FlatTreeDesign.for_fat_tree(BENCH_K)
    controller = Controller(FlatTree(design))
    controller.apply_mode(Mode.GLOBAL_RANDOM)
    flows = hotspot_flows(design.params, random.Random(7))
    monitor = (NetworkMonitor(controller.network) if monitored else None)
    simulator = FlowSimulator(controller.network, controller.route,
                              monitor=monitor)
    begin = time.perf_counter()
    simulator.run(flows)
    elapsed = time.perf_counter() - begin
    return elapsed, monitor


def run_overhead_comparison() -> ExperimentResult:
    result = ExperimentResult(
        experiment="extension: monitoring-plane overhead (fluid sim)",
        x_label="k",
        y_label="flowsim wall-clock (s)",
    )
    bare, _ = timed_run(monitored=False)
    monitored, monitor = timed_run(monitored=True)
    result.new_series("bare").add(BENCH_K, bare)
    result.new_series("monitored").add(BENCH_K, monitored)
    result.notes.append(
        f"{FLOWS} flows; monitored run sampled "
        f"{monitor.samples_taken} allocations over "
        f"{len(monitor.series())} links, "
        f"peak utilization {monitor.peak_utilization():.3f}"
    )
    return result


def test_bench_monitor_overhead(once):
    result = once(run_overhead_comparison)
    show(result)
    bare = result.get("bare").points[BENCH_K]
    monitored = result.get("monitored").points[BENCH_K]
    # Sampling every allocation over every loaded link may cost real
    # work, but it must stay the same order of magnitude as the bare
    # event loop (generous bound: CI machines are noisy).
    assert monitored < bare * 5 + 0.05
