"""Bench: Figure 7 — broadcast/incast throughput in 1000-member clusters.

Shape: flat-tree ~ random graph, both well above fat-tree; throughput
grows with k; locality matters little.
"""

from __future__ import annotations

from conftest import show

from repro.experiments.fig7_broadcast import run_fig7


def test_bench_fig7(once):
    result = once(run_fig7)
    show(result)
    flat = result.get("flat-tree locality")
    fat = result.get("fat-tree locality")
    ks = sorted(flat.points)
    top = ks[-1]
    assert flat.points[top] >= 1.2 * fat.points[top]
    assert fat.points[ks[0]] <= fat.points[top]
