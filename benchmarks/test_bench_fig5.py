"""Bench: Figure 5 — average path length over the entire network.

Regenerates the paper's Figure 5 series (fat-tree, random graph, and the
five flat-tree (m, n) settings) and asserts the headline shape: the
profiled flat-tree sits below fat-tree and within ~10% of the random
graph.
"""

from __future__ import annotations

from conftest import show

from repro.experiments.fig5_pathlength import run_fig5


def test_bench_fig5(once):
    result = once(run_fig5)
    show(result)
    flat = result.get("flat-tree(m=1k/8,n=2k/8)")
    fat = result.get("fat-tree")
    rnd = result.get("random graph")
    for k in flat.points:
        assert flat.points[k] < fat.points[k]
        assert flat.points[k] <= rnd.points[k] * 1.10
