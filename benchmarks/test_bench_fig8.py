"""Bench: Figure 8 — all-to-all throughput in 20-member clusters.

Shape: flat-tree tracks the local-random optimum and beats the two-stage
random graph at small k (the paper's k <= 14 regime); fat-tree is the
weakest and placement-sensitive.

Default sweep is k = 4, 6, 8 (the k = 8 LPs take ~1.5 min total);
``REPRO_KS`` extends the sweep, ``REPRO_SOLVER=approx`` trades exactness
for reach.
"""

from __future__ import annotations

from conftest import show

from repro.experiments.common import ks_from_env
from repro.experiments.fig8_alltoall import run_fig8

DEFAULT_BENCH_KS = (4, 6, 8)


def test_bench_fig8(once):
    result = once(run_fig8, ks=ks_from_env(DEFAULT_BENCH_KS))
    show(result)
    flat = result.get("flat-tree locality")
    fat = result.get("fat-tree locality")
    two = result.get("two-stage random graph locality")
    for k in flat.points:
        assert flat.points[k] >= fat.points[k]
        if k <= 14:
            assert flat.points[k] >= two.points[k] * 0.98
