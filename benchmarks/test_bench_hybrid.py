"""Bench: §3.4 — hybrid flat-tree zone isolation.

Regenerates the proportion sweep: a global-random zone (broadcast
workload) and a local-random zone (all-to-all workload) share the core.
The paper's claim: each zone performs as the corresponding complete
network and the zones do not interfere — verified here as
``combined == min(global zone, local zone)`` at every proportion.

The paper runs k = 30; the claim is about isolation, not scale, so the
default here is k = 6 (seconds) — ``REPRO_HYBRID_K=8`` upscales.
"""

from __future__ import annotations

import os

import pytest
from conftest import show

from repro.experiments.hybrid import run_hybrid

DEFAULT_FRACTIONS = (0.25, 0.5, 0.75)


def bench_k() -> int:
    return int(os.environ.get("REPRO_HYBRID_K", "6"))


def test_bench_hybrid(once):
    result = once(run_hybrid, k=bench_k(), fractions=DEFAULT_FRACTIONS)
    show(result)
    combined = result.get("combined")
    g = result.get("global zone")
    l = result.get("local zone")
    for fraction in combined.points:
        floor = min(g.points[fraction], l.points[fraction])
        assert combined.points[fraction] == pytest.approx(floor, rel=0.02)
