# Convenience targets for the flat-tree reproduction.

PYTHON ?= python3

.PHONY: install test bench figures examples lint clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -x -q -m "not slow" --ignore=tests/experiments

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

figures:
	$(PYTHON) -m repro.cli fig5
	$(PYTHON) -m repro.cli fig6
	$(PYTHON) -m repro.cli fig7
	$(PYTHON) -m repro.cli fig8 --ks 4 6
	$(PYTHON) -m repro.cli hybrid --k 6

examples:
	for script in examples/*.py; do echo "== $$script =="; $(PYTHON) $$script; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
