# Convenience targets for the flat-tree reproduction.

PYTHON ?= python3

.PHONY: install test bench bench-session bench-smoke bench-compare trend-smoke figures examples lint lint-fast clean telemetry-smoke monitor-smoke chaos-smoke health-smoke hotspots-smoke heal-smoke

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -x -q -m "not slow" --ignore=tests/experiments

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Record a durable perf session: full bench suite -> repo-root
# BENCH_<seq>.json with environment fingerprint + registry counters.
bench-session:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench

# Tiny bench smoke for CI: two fast benches -> BENCH_smoke.json, then
# prove the comparator wiring with a self-compare (must exit 0).  The
# file is left behind for the CI artifact upload; `make clean` removes it.
bench-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --select "fig5 or ksp" --out BENCH_smoke.json --label smoke
	$(PYTHON) -m tools.perfreport compare BENCH_smoke.json BENCH_smoke.json

# Trajectory-aware regression gate: the default judges the newest
# point of every bench/hotspot metric against a MAD noise band fitted
# to the whole recorded BENCH_*/HOTSPOTS_* trajectory (exit 1 only
# when a metric steps outside its band — a regression must beat the
# noise, not just the 25% pairwise tolerance).  Override with
# BASE=... NEW=... to fall back to the pairwise two-session compare.
bench-compare:
	@if [ -n "$$BASE" ] || [ -n "$$NEW" ]; then \
		$(PYTHON) -m tools.perfreport compare "$$BASE" "$$NEW"; \
	else \
		$(PYTHON) -m tools.perfreport trend; \
	fi

# Differential-analysis smoke for CI: attribute the delta between the
# two newest recorded bench sessions (exit 1 = attributed regression is
# fine here — the gate is `trend` below), then run the trajectory
# engine over the full recorded history and leave TREND_REPORT.json
# behind for the CI artifact upload; `make clean` removes it.
trend-smoke:
	$(PYTHON) -m tools.perfreport diff || [ $$? -eq 1 ]
	$(PYTHON) -m tools.perfreport trend --out TREND_REPORT.json
	test -s TREND_REPORT.json

# Static analysis: the domain-aware flatlint pass (FT001-FT007, incl.
# the whole-program concurrency-safety and determinism-taint analyses;
# see docs/static-analysis.md) plus the mypy typing gate configured in
# pyproject.toml.  mypy is skipped with a notice when not installed
# (it is in the `dev` extra); flatlint always runs.  Exit codes:
# 0 clean, 1 findings, 2 usage, 3 engine errors (parse failure/crash).
lint:
	$(PYTHON) -m tools.flatlint src tests tools benchmarks
	@if $(PYTHON) -c "import mypy" >/dev/null 2>&1; then \
		$(PYTHON) -m mypy src/repro; \
	else \
		echo "lint: mypy not installed - skipping the typing gate (pip install -e .[dev])"; \
	fi

# Fast inner-loop lint: only the files git reports changed are linted,
# but src/tools are still parsed as context so the interprocedural
# rules (FT006/FT007) reason over the whole call graph.
lint-fast:
	$(PYTHON) -m tools.flatlint --changed-only src tests tools benchmarks

# Run one small experiment with telemetry enabled, validate the JSONL
# stream against the wire contract in docs/observability.md, and prove
# the span trace round-trips into a profile tree + folded stacks.
telemetry-smoke:
	rm -f telemetry-smoke.jsonl
	PYTHONPATH=src $(PYTHON) -m repro.cli --telemetry=telemetry-smoke.jsonl fig5 --ks 4
	$(PYTHON) tools/check_telemetry.py telemetry-smoke.jsonl --min-names 12
	$(PYTHON) -m tools.perfreport profile telemetry-smoke.jsonl
	$(PYTHON) -m tools.perfreport flamegraph telemetry-smoke.jsonl > /dev/null
	rm -f telemetry-smoke.jsonl

# Exercise the network monitoring plane on a k=4 all-to-all and validate
# the link_sample/link_down/link_up events it exports.
monitor-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli --telemetry=monitor-smoke.jsonl monitor --k 4 --pattern alltoall
	PYTHONPATH=src $(PYTHON) -m repro.cli --telemetry=monitor-smoke-fct.jsonl fct --ks 4 --flows 12 --monitor
	$(PYTHON) tools/check_telemetry.py monitor-smoke.jsonl --min-names 4
	$(PYTHON) tools/check_telemetry.py monitor-smoke-fct.jsonl --min-names 10
	rm -f monitor-smoke.jsonl monitor-smoke-fct.jsonl

# Run a small fixed-seed chaos sweep twice: the recovery events must
# pass the wire contract and the sweep table must be deterministic.
chaos-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli --telemetry=chaos-smoke.jsonl chaos --k 4 --rates 0 0.3 --technologies mems --trials 2 --seed 7 > /dev/null
	$(PYTHON) tools/check_telemetry.py chaos-smoke.jsonl --min-names 8
	PYTHONPATH=src $(PYTHON) -m repro.cli chaos --k 4 --rates 0 0.3 --technologies mems --trials 2 --seed 7 > chaos-smoke-a.txt
	PYTHONPATH=src $(PYTHON) -m repro.cli chaos --k 4 --rates 0 0.3 --technologies mems --trials 2 --seed 7 > chaos-smoke-b.txt
	cmp chaos-smoke-a.txt chaos-smoke-b.txt
	rm -f chaos-smoke.jsonl chaos-smoke-a.txt chaos-smoke-b.txt

# Record a hotspot run, then judge it through the fabric health plane:
# exactly the link_hotspot alert must fire (exit 1 on any other alert
# set, 2 on IO/usage errors), the JSON report must replay byte-identical,
# and the `top --once` dashboard frame must render.  HEALTH_REPORT.json
# and HEALTH_REPORT.prom are left behind for the CI artifact upload;
# `make clean` removes them.
health-smoke:
	rm -f health-smoke.jsonl
	PYTHONPATH=src $(PYTHON) -m repro.cli --telemetry=health-smoke.jsonl monitor --k 4 --pattern hotspot --flows 24 > /dev/null
	PYTHONPATH=src $(PYTHON) -m repro.cli health health-smoke.jsonl --expect link_hotspot --out HEALTH_REPORT.json --prom HEALTH_REPORT.prom
	PYTHONPATH=src $(PYTHON) -m repro.cli health health-smoke.jsonl --expect link_hotspot --json > health-smoke-a.json
	PYTHONPATH=src $(PYTHON) -m repro.cli health health-smoke.jsonl --expect link_hotspot --json > health-smoke-b.json
	cmp health-smoke-a.json health-smoke-b.json
	PYTHONPATH=src $(PYTHON) -m repro.cli top --trace health-smoke.jsonl --once > /dev/null
	rm -f health-smoke.jsonl health-smoke-a.json health-smoke-b.json

# Close the loop end to end: record a hotspot monitor trace, replay it
# through the remediation plane (exactly a reconvert must complete;
# HEAL_LEDGER.json is left behind for the CI artifact upload), prove
# the ledger replays byte-identical, validate the selfheal.* wire
# events of a telemetry-enabled replay, and run the three-arm regret
# gate (exit 1 unless the closed loop strictly beats no-op).
heal-smoke:
	rm -f heal-smoke.jsonl
	PYTHONPATH=src $(PYTHON) -m repro.cli --telemetry=heal-smoke.jsonl monitor --k 4 --pattern hotspot --flows 24 > /dev/null
	PYTHONPATH=src $(PYTHON) -m repro.cli heal heal-smoke.jsonl --expect reconvert --out HEAL_LEDGER.json
	PYTHONPATH=src $(PYTHON) -m repro.cli heal heal-smoke.jsonl --out heal-smoke-b.json > /dev/null
	cmp HEAL_LEDGER.json heal-smoke-b.json
	PYTHONPATH=src $(PYTHON) -m repro.cli --telemetry=heal-smoke-events.jsonl heal heal-smoke.jsonl > /dev/null
	$(PYTHON) tools/check_telemetry.py heal-smoke-events.jsonl --min-names 3
	PYTHONPATH=src $(PYTHON) -m repro.cli heal --regret --k 4 --seed 7
	rm -f heal-smoke.jsonl heal-smoke-b.json heal-smoke-events.jsonl

# Tiny sampling-profiler campaign for CI: a k=8 battery at a high
# sample rate -> HOTSPOTS_smoke.json, validated by re-rendering it and
# round-tripping the captured folded stacks through tools.perfreport.
# The artifact is left behind for the CI upload; `make clean` removes it.
hotspots-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli hotspots --k 8 --hz 331 --flows 64 --out HOTSPOTS_smoke.json --label smoke > /dev/null
	$(PYTHON) -m tools.perfreport hotspots HOTSPOTS_smoke.json --folded hotspots-smoke.folded
	test -s hotspots-smoke.folded
	rm -f hotspots-smoke.folded

figures:
	$(PYTHON) -m repro.cli fig5
	$(PYTHON) -m repro.cli fig6
	$(PYTHON) -m repro.cli fig7
	$(PYTHON) -m repro.cli fig8 --ks 4 6
	$(PYTHON) -m repro.cli hybrid --k 6

examples:
	for script in examples/*.py; do echo "== $$script =="; $(PYTHON) $$script; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	rm -f BENCH_smoke.json telemetry-smoke.jsonl TREND_REPORT.json
	rm -f HEALTH_REPORT.json HEALTH_REPORT.prom health-smoke*.jsonl health-smoke-*.json
	rm -f HOTSPOTS_smoke.json hotspots-smoke.folded
	rm -f HEAL_LEDGER.json heal-smoke*.jsonl heal-smoke-b.json
	find . -name __pycache__ -type d -exec rm -rf {} +
