"""CLI: ``python -m tools.perfreport <compare|profile|flamegraph>``.

* ``compare BASE NEW`` — the bench regression gate over two
  ``BENCH_*.json`` sessions.  Exit 0 clean, 1 regressions, 2 usage
  errors — the same convention as ``tools.flatlint``.
* ``profile RUN.jsonl`` — reconstruct the span tree of a
  ``--telemetry=RUN.jsonl`` session and print per-name cumulative /
  self time plus the critical path.
* ``flamegraph RUN.jsonl`` — folded stacks (``a;b;c <usec>``) for
  ``flamegraph.pl`` / speedscope, to stdout or ``--out``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from . import (
    DEFAULT_MIN_RUNTIME_S,
    DEFAULT_TOLERANCE,
    __version__,
    compare_sessions,
    load_session,
    render_json,
    render_text,
)

try:
    from repro.errors import ReproError
    from repro.obs.perf import Profile
except ImportError:  # standalone checkout (no installed package)
    sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))
    from repro.errors import ReproError
    from repro.obs.perf import Profile


def _cmd_compare(args: argparse.Namespace) -> int:
    try:
        base = load_session(Path(args.base))
        new = load_session(Path(args.new))
    except ReproError as exc:
        print(f"perfreport: {exc}", file=sys.stderr)
        return 2
    comparison = compare_sessions(
        base, new,
        tolerance=args.tolerance,
        min_runtime_s=args.min_runtime,
        base_label=args.base, new_label=args.new,
    )
    if args.format == "json":
        print(json.dumps(render_json(comparison), indent=1, sort_keys=True))
    else:
        print(render_text(comparison))
    return comparison.exit_code


def _load_profile(path: str) -> Optional[Profile]:
    try:
        profile = Profile.from_jsonl(path)
    except (ReproError, OSError) as exc:
        print(f"perfreport: {exc}", file=sys.stderr)
        return None
    if not profile.roots:
        print(f"perfreport: {path} contains no span events "
              "(record with flattree --telemetry=PATH ...)",
              file=sys.stderr)
        return None
    return profile


def _cmd_profile(args: argparse.Namespace) -> int:
    profile = _load_profile(args.trace)
    if profile is None:
        return 2
    if args.format == "json":
        document = {
            "total_s": profile.total_s,
            "spans": len(profile.nodes),
            "names": [
                {"name": s.name, "calls": s.calls, "cum_s": s.cum_s,
                 "self_s": s.self_s, "mem_peak_kb": s.mem_peak_kb}
                for s in profile.aggregate()
            ],
            "critical_path": [
                {"name": n.name, "span_id": n.span_id, "depth": n.depth,
                 "cum_s": n.duration_s, "self_s": n.self_s}
                for n in profile.critical_path()
            ],
        }
        print(json.dumps(document, indent=1, sort_keys=True))
    else:
        print(profile.render_table(top=args.top))
    return 0


def _cmd_flamegraph(args: argparse.Namespace) -> int:
    profile = _load_profile(args.trace)
    if profile is None:
        return 2
    folded = "\n".join(profile.folded()) + "\n"
    if args.out:
        Path(args.out).write_text(folded, encoding="utf-8")
        print(f"perfreport: wrote {len(profile.nodes)} spans of folded "
              f"stacks to {args.out}")
    else:
        sys.stdout.write(folded)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="perfreport",
        description="Bench regression gate + span-tree profiler "
                    "(docs/performance.md).",
    )
    parser.add_argument(
        "--version", action="version", version=f"perfreport {__version__}")
    sub = parser.add_subparsers(dest="command")

    p = sub.add_parser(
        "compare", help="judge NEW against BASE (both BENCH_*.json)")
    p.add_argument("base", help="baseline BENCH_*.json")
    p.add_argument("new", help="candidate BENCH_*.json")
    p.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        metavar="FRAC",
        help="relative slowdown tolerated before a bench regresses "
             f"(default {DEFAULT_TOLERANCE})")
    p.add_argument(
        "--min-runtime", type=float, default=DEFAULT_MIN_RUNTIME_S,
        metavar="SECONDS",
        help="benches under this on both sides are noise, never judged "
             f"(default {DEFAULT_MIN_RUNTIME_S})")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.set_defaults(handler=_cmd_compare)

    p = sub.add_parser(
        "profile", help="span-tree profile of a telemetry JSONL trace")
    p.add_argument("trace", help="JSONL file from flattree --telemetry=PATH")
    p.add_argument("--top", type=int, default=20,
                   help="rows in the per-name table (default 20)")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.set_defaults(handler=_cmd_profile)

    p = sub.add_parser(
        "flamegraph",
        help="folded-stack export (flamegraph.pl / speedscope)")
    p.add_argument("trace", help="JSONL file from flattree --telemetry=PATH")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write folded stacks here instead of stdout")
    p.set_defaults(handler=_cmd_flamegraph)

    args = parser.parse_args(argv)
    if not hasattr(args, "handler"):
        parser.print_help()
        return 2
    result: int = args.handler(args)
    return result


if __name__ == "__main__":
    raise SystemExit(main())
