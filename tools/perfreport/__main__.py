"""CLI: ``python -m tools.perfreport <compare|profile|flamegraph|hotspots>``.

* ``compare [BASE NEW]`` — the bench regression gate over two
  ``BENCH_*.json`` sessions; with no paths it auto-selects the two
  newest numbered repo-root sessions (exit 0 with a message when fewer
  than two exist).  Exit 0 clean, 1 regressions, 2 usage errors — the
  same convention as ``tools.flatlint``.
* ``profile RUN.jsonl`` — reconstruct the span tree of a
  ``--telemetry=RUN.jsonl`` session and print per-name cumulative /
  self time plus the critical path.
* ``flamegraph RUN.jsonl`` — folded stacks (``a;b;c <usec>``) for
  ``flamegraph.pl`` / speedscope, to stdout or ``--out``.
* ``hotspots HOTSPOTS_N.json`` — render a sampling-profiler campaign
  artifact (``flattree hotspots``): stage wall/sample table, top
  functions by self time with their span context, and ``--folded``
  re-export of the captured stacks.
* ``diff [BASE NEW]`` — attribute the wall-time delta between two
  recordings per span path / function (``repro.obs.diffprof``); inputs
  may be telemetry JSONL traces, ``HOTSPOTS_*.json`` campaigns, or
  ``BENCH_*.json`` sessions (kinds auto-detected, must match).
  ``--folded`` writes a differential folded-stack file (``stack
  base_us new_us``) for red/blue flame graphs.  Exit 1 when any path
  grew beyond tolerance.
* ``trend`` — trajectory-aware regression analytics over every
  numbered ``BENCH_*.json`` / ``HOTSPOTS_*.json`` session
  (``repro.obs.trend``): MAD noise bands over the trailing window,
  step-change detection on the newest point.  Exit 1 on a step-up.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from . import (
    DEFAULT_MIN_RUNTIME_S,
    DEFAULT_TOLERANCE,
    __version__,
    compare_sessions,
    load_session,
    render_json,
    render_text,
)

try:
    from repro.errors import ReproError
    from repro.obs.perf import Profile
except ImportError:  # standalone checkout (no installed package)
    sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))
    from repro.errors import ReproError
    from repro.obs.perf import Profile

from repro.obs import trend as trend_defaults  # noqa: E402 - after path fix


def _session_seq(path: Path) -> int:
    digits = "".join(ch for ch in path.stem if ch.isdigit())
    return int(digits) if digits else 0


def _auto_select(root: Path) -> Optional[tuple]:
    """The two newest numbered sessions, with explicit id notices.

    Prints which sessions exist (single / none) or were picked, and
    flags sequence gaps — a gapped trajectory usually means a session
    was deleted or recorded elsewhere, which changes what "newest two"
    compares.  Returns ``None`` when fewer than two sessions exist.
    """
    from repro.obs import bench as bench_sessions

    sessions = bench_sessions.bench_paths(root)
    if len(sessions) < 2:
        names = ", ".join(p.name for p in sessions) or "none"
        print(f"perfreport: found {len(sessions)} BENCH_<seq>.json "
              f"session(s) under {root} — need two to compare; "
              f"record more with flattree bench (existing: {names})")
        return None
    base_path, new_path = sessions[-2], sessions[-1]
    notice = (f"perfreport: auto-selected {base_path.name} (base) "
              f"vs {new_path.name} (new)")
    seqs = [_session_seq(p) for p in sessions]
    missing = sorted(set(range(min(seqs), max(seqs) + 1)) - set(seqs))
    if missing:
        gaps = ", ".join(str(n) for n in missing)
        notice += (f" — sequence has gaps (missing seq {gaps}) across "
                   f"{len(sessions)} session(s): "
                   + ", ".join(p.name for p in sessions))
    print(notice)
    return base_path, new_path


def _cmd_compare(args: argparse.Namespace) -> int:
    base_path, new_path = args.base, args.new
    if (base_path is None) != (new_path is None):
        print("perfreport: pass both BASE and NEW, or neither "
              "(auto-selects the two newest BENCH_<seq>.json)",
              file=sys.stderr)
        return 2
    if base_path is None:
        from repro.obs import bench as bench_sessions

        root = Path(args.root) if args.root else bench_sessions.repo_root()
        selected = _auto_select(root)
        if selected is None:
            return 0
        base_path, new_path = str(selected[0]), str(selected[1])
    try:
        base = load_session(Path(base_path))
        new = load_session(Path(new_path))
    except ReproError as exc:
        print(f"perfreport: {exc}", file=sys.stderr)
        return 2
    comparison = compare_sessions(
        base, new,
        tolerance=args.tolerance,
        min_runtime_s=args.min_runtime,
        base_label=base_path, new_label=new_path,
    )
    if args.format == "json":
        print(json.dumps(render_json(comparison), indent=1, sort_keys=True))
    else:
        print(render_text(comparison))
    return comparison.exit_code


def _load_profile(path: str) -> Optional[Profile]:
    try:
        profile = Profile.from_jsonl(path)
    except (ReproError, OSError) as exc:
        print(f"perfreport: {exc}", file=sys.stderr)
        return None
    if not profile.roots:
        print(f"perfreport: {path} contains no span events "
              "(record with flattree --telemetry=PATH ...)",
              file=sys.stderr)
        return None
    return profile


def _cmd_profile(args: argparse.Namespace) -> int:
    profile = _load_profile(args.trace)
    if profile is None:
        return 2
    if args.format == "json":
        document = {
            "total_s": profile.total_s,
            "spans": len(profile.nodes),
            "names": [
                {"name": s.name, "calls": s.calls, "cum_s": s.cum_s,
                 "self_s": s.self_s, "mem_peak_kb": s.mem_peak_kb}
                for s in profile.aggregate()
            ],
            "critical_path": [
                {"name": n.name, "span_id": n.span_id, "depth": n.depth,
                 "cum_s": n.duration_s, "self_s": n.self_s}
                for n in profile.critical_path()
            ],
        }
        print(json.dumps(document, indent=1, sort_keys=True))
    else:
        print(profile.render_table(top=args.top))
    return 0


def _cmd_flamegraph(args: argparse.Namespace) -> int:
    profile = _load_profile(args.trace)
    if profile is None:
        return 2
    folded = "\n".join(profile.folded()) + "\n"
    if args.out:
        Path(args.out).write_text(folded, encoding="utf-8")
        print(f"perfreport: wrote {len(profile.nodes)} spans of folded "
              f"stacks to {args.out}")
    else:
        sys.stdout.write(folded)
    return 0


def _cmd_hotspots(args: argparse.Namespace) -> int:
    from repro.obs import hotspots as hotspot_docs

    try:
        document = hotspot_docs.load_document(Path(args.artifact))
    except ReproError as exc:
        print(f"perfreport: {exc}", file=sys.stderr)
        return 2
    if args.folded:
        folded = document.get("folded") or []
        Path(args.folded).write_text(
            "\n".join(folded) + ("\n" if folded else ""), encoding="utf-8")
        print(f"perfreport: wrote {len(folded)} folded stacks to "
              f"{args.folded}")
    if args.format == "json":
        print(json.dumps(document, indent=1, sort_keys=True))
    else:
        print(hotspot_docs.render_document(document, top=args.top))
    return 0


def _load_recording(path: str) -> Optional[tuple]:
    """(kind, payload) for a diffable recording, else None after a message.

    ``.jsonl`` files are telemetry traces; JSON documents are sniffed
    by schema — ``flattree.hotspots/1`` campaigns vs bench sessions.
    """
    from repro.obs import bench as bench_sessions
    from repro.obs import hotspots as hotspot_docs

    if path.endswith(".jsonl"):
        profile = _load_profile(path)
        return ("trace", profile) if profile is not None else None
    try:
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"perfreport: {path}: {exc}", file=sys.stderr)
        return None
    if not isinstance(raw, dict):
        print(f"perfreport: {path}: expected a JSON object", file=sys.stderr)
        return None
    try:
        if raw.get("schema") == hotspot_docs.SCHEMA:
            return "hotspots", hotspot_docs.load_document(Path(path))
        if "benchmarks" in raw:
            return "bench", bench_sessions.load_session(Path(path))
    except ReproError as exc:
        print(f"perfreport: {exc}", file=sys.stderr)
        return None
    print(f"perfreport: {path}: neither a BENCH_*.json session, a "
          "HOTSPOTS_*.json campaign, nor a .jsonl telemetry trace",
          file=sys.stderr)
    return None


def _diff_folded(kind: str, base: object, new: object) -> List[str]:
    from repro.obs import diffprof

    if kind == "trace":
        return diffprof.subtract_folded(
            diffprof.parse_folded(base.folded()),
            diffprof.parse_folded(new.folded()))
    base_folded = base.get("folded") or []
    new_folded = new.get("folded") or []
    return diffprof.subtract_folded(diffprof.parse_folded(base_folded),
                                    diffprof.parse_folded(new_folded))


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.obs import bench as bench_sessions
    from repro.obs import diffprof

    base_path, new_path = args.base, args.new
    if (base_path is None) != (new_path is None):
        print("perfreport: pass both BASE and NEW, or neither "
              "(auto-selects the two newest BENCH_<seq>.json)",
              file=sys.stderr)
        return 2
    if base_path is None:
        root = Path(args.root) if args.root else bench_sessions.repo_root()
        selected = _auto_select(root)
        if selected is None:
            return 0
        base_path, new_path = str(selected[0]), str(selected[1])
    base_rec = _load_recording(base_path)
    new_rec = _load_recording(new_path)
    if base_rec is None or new_rec is None:
        return 2
    if base_rec[0] != new_rec[0]:
        print(f"perfreport: cannot diff a {base_rec[0]} recording against "
              f"a {new_rec[0]} recording — pass two of the same kind",
              file=sys.stderr)
        return 2
    kind = base_rec[0]
    differs = {
        "trace": diffprof.diff_profiles,
        "hotspots": diffprof.diff_hotspot_documents,
        "bench": diffprof.diff_bench_sessions,
    }
    diff = differs[kind](
        base_rec[1], new_rec[1],
        tolerance=args.tolerance, min_runtime_s=args.min_runtime,
        base_label=Path(base_path).name, new_label=Path(new_path).name)
    if args.folded:
        if kind == "bench":
            print("perfreport: --folded needs stack recordings — bench "
                  "sessions carry no stacks (diff traces or "
                  "HOTSPOTS_*.json campaigns instead)", file=sys.stderr)
            return 2
        lines = _diff_folded(kind, base_rec[1], new_rec[1])
        Path(args.folded).write_text(
            "\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")
        print(f"perfreport: wrote {len(lines)} differential folded "
              f"stacks to {args.folded} (render with flamegraph.pl "
              "--negate for red/blue)")
    if args.format == "json":
        print(json.dumps(diffprof.render_json(diff), indent=1,
                         sort_keys=True))
    else:
        print(diffprof.render_text(diff, top=args.top))
    diffprof.emit_diff_event(diff)
    return diff.exit_code


def _cmd_trend(args: argparse.Namespace) -> int:
    from repro.obs import bench as bench_sessions
    from repro.obs import trend as trend_engine

    root = Path(args.root) if args.root else bench_sessions.repo_root()
    report = trend_engine.analyze_trajectory(
        root, window=args.window, sigmas=args.sigmas,
        rel_floor=args.rel_floor, min_runtime_s=args.min_runtime)
    if args.out:
        Path(args.out).write_text(
            json.dumps(trend_engine.render_json(report), indent=1,
                       sort_keys=True) + "\n", encoding="utf-8")
        print(f"perfreport: wrote trend report to {args.out}")
    if args.format == "json":
        print(json.dumps(trend_engine.render_json(report), indent=1,
                         sort_keys=True))
    elif args.format == "markdown":
        print(trend_engine.render_markdown(report, top=args.top))
    else:
        print(trend_engine.render_text(report, top=args.top))
    trend_engine.emit_trend_event(report)
    return report.exit_code


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="perfreport",
        description="Bench regression gate + span-tree profiler "
                    "(docs/performance.md).",
    )
    parser.add_argument(
        "--version", action="version", version=f"perfreport {__version__}")
    sub = parser.add_subparsers(dest="command")

    p = sub.add_parser(
        "compare", help="judge NEW against BASE (both BENCH_*.json); "
                        "with no paths, the two newest numbered sessions")
    p.add_argument("base", nargs="?", default=None,
                   help="baseline BENCH_*.json (default: second-newest "
                        "repo-root session)")
    p.add_argument("new", nargs="?", default=None,
                   help="candidate BENCH_*.json (default: newest "
                        "repo-root session)")
    p.add_argument("--root", default=None, metavar="DIR",
                   help="directory searched for BENCH_<seq>.json when "
                        "auto-selecting (default: the repo root)")
    p.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        metavar="FRAC",
        help="relative slowdown tolerated before a bench regresses "
             f"(default {DEFAULT_TOLERANCE})")
    p.add_argument(
        "--min-runtime", type=float, default=DEFAULT_MIN_RUNTIME_S,
        metavar="SECONDS",
        help="benches under this on both sides are noise, never judged "
             f"(default {DEFAULT_MIN_RUNTIME_S})")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.set_defaults(handler=_cmd_compare)

    p = sub.add_parser(
        "profile", help="span-tree profile of a telemetry JSONL trace")
    p.add_argument("trace", help="JSONL file from flattree --telemetry=PATH")
    p.add_argument("--top", type=int, default=20,
                   help="rows in the per-name table (default 20)")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.set_defaults(handler=_cmd_profile)

    p = sub.add_parser(
        "flamegraph",
        help="folded-stack export (flamegraph.pl / speedscope)")
    p.add_argument("trace", help="JSONL file from flattree --telemetry=PATH")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write folded stacks here instead of stdout")
    p.set_defaults(handler=_cmd_flamegraph)

    p = sub.add_parser(
        "hotspots",
        help="render a HOTSPOTS_*.json campaign artifact "
             "(flattree hotspots)")
    p.add_argument("artifact", help="HOTSPOTS_*.json from flattree hotspots")
    p.add_argument("--top", type=int, default=20,
                   help="rows in the function table (default 20)")
    p.add_argument("--folded", default=None, metavar="PATH",
                   help="also re-export the folded stacks for "
                        "flamegraph.pl / speedscope")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.set_defaults(handler=_cmd_hotspots)

    p = sub.add_parser(
        "diff", help="attribute the wall-time delta between two "
                     "recordings (traces, HOTSPOTS_*.json, or "
                     "BENCH_*.json); with no paths, the two newest "
                     "numbered bench sessions")
    p.add_argument("base", nargs="?", default=None,
                   help="baseline recording (default: second-newest "
                        "repo-root BENCH_<seq>.json)")
    p.add_argument("new", nargs="?", default=None,
                   help="candidate recording (default: newest repo-root "
                        "BENCH_<seq>.json)")
    p.add_argument("--root", default=None, metavar="DIR",
                   help="directory searched for BENCH_<seq>.json when "
                        "auto-selecting (default: the repo root)")
    p.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE, metavar="FRAC",
        help="relative growth tolerated before a path counts as grown "
             f"(default {DEFAULT_TOLERANCE})")
    p.add_argument(
        "--min-runtime", type=float, default=DEFAULT_MIN_RUNTIME_S,
        metavar="SECONDS",
        help="paths under this on both sides are below-floor, never "
             f"judged (default {DEFAULT_MIN_RUNTIME_S})")
    p.add_argument("--folded", default=None, metavar="PATH",
                   help="write differential folded stacks (stack "
                        "base_us new_us) for red/blue flame graphs; "
                        "traces and hotspot campaigns only")
    p.add_argument("--top", type=int, default=30,
                   help="rows in the attribution table (default 30)")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.set_defaults(handler=_cmd_diff)

    p = sub.add_parser(
        "trend", help="trajectory-aware regression analytics over every "
                      "numbered BENCH_*/HOTSPOTS_* session")
    p.add_argument("--root", default=None, metavar="DIR",
                   help="directory scanned for numbered sessions "
                        "(default: the repo root)")
    p.add_argument("--window", type=int, default=trend_defaults.DEFAULT_WINDOW,
                   help="trailing sessions the noise model is fitted to "
                        f"(default {trend_defaults.DEFAULT_WINDOW})")
    p.add_argument("--sigmas", type=float, default=trend_defaults.DEFAULT_SIGMAS,
                   help="band half-width in robust (MAD-derived) sigmas "
                        f"(default {trend_defaults.DEFAULT_SIGMAS})")
    p.add_argument(
        "--rel-floor", type=float, default=trend_defaults.DEFAULT_REL_FLOOR,
        metavar="FRAC",
        help="relative band floor so near-constant series keep a "
             f"tolerance (default {trend_defaults.DEFAULT_REL_FLOOR})")
    p.add_argument(
        "--min-runtime", type=float, default=trend_defaults.DEFAULT_MIN_RUNTIME_S,
        metavar="SECONDS",
        help="absolute band floor; sub-floor metrics are never judged "
             f"(default {trend_defaults.DEFAULT_MIN_RUNTIME_S})")
    p.add_argument("--top", type=int, default=40,
                   help="rows in the metric table (default 40)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="also write the JSON report here (CI artifact)")
    p.add_argument("--format", choices=("text", "json", "markdown"),
                   default="text")
    p.set_defaults(handler=_cmd_trend)

    args = parser.parse_args(argv)
    if not hasattr(args, "handler"):
        parser.print_help()
        return 2
    result: int = args.handler(args)
    return result


if __name__ == "__main__":
    raise SystemExit(main())
