"""CLI: ``python -m tools.perfreport <compare|profile|flamegraph|hotspots>``.

* ``compare [BASE NEW]`` — the bench regression gate over two
  ``BENCH_*.json`` sessions; with no paths it auto-selects the two
  newest numbered repo-root sessions (exit 0 with a message when fewer
  than two exist).  Exit 0 clean, 1 regressions, 2 usage errors — the
  same convention as ``tools.flatlint``.
* ``profile RUN.jsonl`` — reconstruct the span tree of a
  ``--telemetry=RUN.jsonl`` session and print per-name cumulative /
  self time plus the critical path.
* ``flamegraph RUN.jsonl`` — folded stacks (``a;b;c <usec>``) for
  ``flamegraph.pl`` / speedscope, to stdout or ``--out``.
* ``hotspots HOTSPOTS_N.json`` — render a sampling-profiler campaign
  artifact (``flattree hotspots``): stage wall/sample table, top
  functions by self time with their span context, and ``--folded``
  re-export of the captured stacks.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from . import (
    DEFAULT_MIN_RUNTIME_S,
    DEFAULT_TOLERANCE,
    __version__,
    compare_sessions,
    load_session,
    render_json,
    render_text,
)

try:
    from repro.errors import ReproError
    from repro.obs.perf import Profile
except ImportError:  # standalone checkout (no installed package)
    sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))
    from repro.errors import ReproError
    from repro.obs.perf import Profile


def _cmd_compare(args: argparse.Namespace) -> int:
    base_path, new_path = args.base, args.new
    if (base_path is None) != (new_path is None):
        print("perfreport: pass both BASE and NEW, or neither "
              "(auto-selects the two newest BENCH_<seq>.json)",
              file=sys.stderr)
        return 2
    if base_path is None:
        from repro.obs import bench as bench_sessions

        root = Path(args.root) if args.root else bench_sessions.repo_root()
        sessions = bench_sessions.bench_paths(root)
        if len(sessions) < 2:
            print(f"perfreport: found {len(sessions)} BENCH_<seq>.json "
                  f"session(s) under {root} — need two to compare; "
                  "record more with flattree bench")
            return 0
        base_path, new_path = str(sessions[-2]), str(sessions[-1])
        print(f"perfreport: auto-selected {Path(base_path).name} (base) "
              f"vs {Path(new_path).name} (new)")
    try:
        base = load_session(Path(base_path))
        new = load_session(Path(new_path))
    except ReproError as exc:
        print(f"perfreport: {exc}", file=sys.stderr)
        return 2
    comparison = compare_sessions(
        base, new,
        tolerance=args.tolerance,
        min_runtime_s=args.min_runtime,
        base_label=base_path, new_label=new_path,
    )
    if args.format == "json":
        print(json.dumps(render_json(comparison), indent=1, sort_keys=True))
    else:
        print(render_text(comparison))
    return comparison.exit_code


def _load_profile(path: str) -> Optional[Profile]:
    try:
        profile = Profile.from_jsonl(path)
    except (ReproError, OSError) as exc:
        print(f"perfreport: {exc}", file=sys.stderr)
        return None
    if not profile.roots:
        print(f"perfreport: {path} contains no span events "
              "(record with flattree --telemetry=PATH ...)",
              file=sys.stderr)
        return None
    return profile


def _cmd_profile(args: argparse.Namespace) -> int:
    profile = _load_profile(args.trace)
    if profile is None:
        return 2
    if args.format == "json":
        document = {
            "total_s": profile.total_s,
            "spans": len(profile.nodes),
            "names": [
                {"name": s.name, "calls": s.calls, "cum_s": s.cum_s,
                 "self_s": s.self_s, "mem_peak_kb": s.mem_peak_kb}
                for s in profile.aggregate()
            ],
            "critical_path": [
                {"name": n.name, "span_id": n.span_id, "depth": n.depth,
                 "cum_s": n.duration_s, "self_s": n.self_s}
                for n in profile.critical_path()
            ],
        }
        print(json.dumps(document, indent=1, sort_keys=True))
    else:
        print(profile.render_table(top=args.top))
    return 0


def _cmd_flamegraph(args: argparse.Namespace) -> int:
    profile = _load_profile(args.trace)
    if profile is None:
        return 2
    folded = "\n".join(profile.folded()) + "\n"
    if args.out:
        Path(args.out).write_text(folded, encoding="utf-8")
        print(f"perfreport: wrote {len(profile.nodes)} spans of folded "
              f"stacks to {args.out}")
    else:
        sys.stdout.write(folded)
    return 0


def _cmd_hotspots(args: argparse.Namespace) -> int:
    from repro.obs import hotspots as hotspot_docs

    try:
        document = hotspot_docs.load_document(Path(args.artifact))
    except ReproError as exc:
        print(f"perfreport: {exc}", file=sys.stderr)
        return 2
    if args.folded:
        folded = document.get("folded") or []
        Path(args.folded).write_text(
            "\n".join(folded) + ("\n" if folded else ""), encoding="utf-8")
        print(f"perfreport: wrote {len(folded)} folded stacks to "
              f"{args.folded}")
    if args.format == "json":
        print(json.dumps(document, indent=1, sort_keys=True))
    else:
        print(hotspot_docs.render_document(document, top=args.top))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="perfreport",
        description="Bench regression gate + span-tree profiler "
                    "(docs/performance.md).",
    )
    parser.add_argument(
        "--version", action="version", version=f"perfreport {__version__}")
    sub = parser.add_subparsers(dest="command")

    p = sub.add_parser(
        "compare", help="judge NEW against BASE (both BENCH_*.json); "
                        "with no paths, the two newest numbered sessions")
    p.add_argument("base", nargs="?", default=None,
                   help="baseline BENCH_*.json (default: second-newest "
                        "repo-root session)")
    p.add_argument("new", nargs="?", default=None,
                   help="candidate BENCH_*.json (default: newest "
                        "repo-root session)")
    p.add_argument("--root", default=None, metavar="DIR",
                   help="directory searched for BENCH_<seq>.json when "
                        "auto-selecting (default: the repo root)")
    p.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        metavar="FRAC",
        help="relative slowdown tolerated before a bench regresses "
             f"(default {DEFAULT_TOLERANCE})")
    p.add_argument(
        "--min-runtime", type=float, default=DEFAULT_MIN_RUNTIME_S,
        metavar="SECONDS",
        help="benches under this on both sides are noise, never judged "
             f"(default {DEFAULT_MIN_RUNTIME_S})")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.set_defaults(handler=_cmd_compare)

    p = sub.add_parser(
        "profile", help="span-tree profile of a telemetry JSONL trace")
    p.add_argument("trace", help="JSONL file from flattree --telemetry=PATH")
    p.add_argument("--top", type=int, default=20,
                   help="rows in the per-name table (default 20)")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.set_defaults(handler=_cmd_profile)

    p = sub.add_parser(
        "flamegraph",
        help="folded-stack export (flamegraph.pl / speedscope)")
    p.add_argument("trace", help="JSONL file from flattree --telemetry=PATH")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write folded stacks here instead of stdout")
    p.set_defaults(handler=_cmd_flamegraph)

    p = sub.add_parser(
        "hotspots",
        help="render a HOTSPOTS_*.json campaign artifact "
             "(flattree hotspots)")
    p.add_argument("artifact", help="HOTSPOTS_*.json from flattree hotspots")
    p.add_argument("--top", type=int, default=20,
                   help="rows in the function table (default 20)")
    p.add_argument("--folded", default=None, metavar="PATH",
                   help="also re-export the folded stacks for "
                        "flamegraph.pl / speedscope")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.set_defaults(handler=_cmd_hotspots)

    args = parser.parse_args(argv)
    if not hasattr(args, "handler"):
        parser.print_help()
        return 2
    result: int = args.handler(args)
    return result


if __name__ == "__main__":
    raise SystemExit(main())
