"""perfreport — the benchmark regression gate over BENCH_*.json.

The bench runner (``flattree bench``, :mod:`repro.obs.bench`) records
durable per-session wall times; this package judges two sessions
against each other with noise tolerance:

* **relative tolerance** — a bench only counts as a regression when
  ``new / base`` exceeds ``1 + tolerance`` (default 25%, far above
  timer jitter on seconds-long benches);
* **min-runtime floor** — benches where *both* sides run under the
  floor (default 5 ms) are never judged: sub-millisecond timings are
  dominated by scheduler noise, not code;
* environment fingerprints are diffed and reported, because a slower
  python or fewer CPUs explains a "regression" better than any diff.

Exit codes mirror ``tools.flatlint``: 0 clean, 1 regressions found,
2 usage errors (unreadable file, schema violation).  The CLI lives in
``python -m tools.perfreport`` with three subcommands — ``compare``
(this gate), ``profile`` and ``flamegraph`` (front ends for the span
profiler in :mod:`repro.obs.perf`).  See ``docs/performance.md``.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional

try:
    from repro.obs import bench as bench_sessions
except ImportError:  # standalone invocation from a checkout
    sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))
    from repro.obs import bench as bench_sessions

__version__ = "1.0.0"

#: Default relative slowdown tolerated before a bench is a regression.
DEFAULT_TOLERANCE = 0.25

#: Default floor (seconds): benches under it on both sides are noise.
DEFAULT_MIN_RUNTIME_S = 0.005

#: Fingerprint keys whose drift makes wall-time comparison suspect.
_ENV_KEYS = ("python", "networkx", "numpy", "scipy", "cpu_count",
             "machine", "implementation")

load_session = bench_sessions.load_session


@dataclass
class Delta:
    """One bench key's judgement across the two sessions."""

    key: str
    base_s: Optional[float]
    new_s: Optional[float]
    status: str  # ok | regression | improvement | below-floor | added | removed

    @property
    def ratio(self) -> Optional[float]:
        if self.base_s and self.new_s is not None and self.base_s > 0:
            return self.new_s / self.base_s
        return None


@dataclass
class Comparison:
    """The full verdict of ``compare BASE NEW``."""

    base_label: str
    new_label: str
    tolerance: float
    min_runtime_s: float
    deltas: List[Delta] = field(default_factory=list)
    environment_drift: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def exit_code(self) -> int:
        return 1 if self.regressions else 0


def _wall_times(session: Mapping[str, object]) -> Dict[str, float]:
    benchmarks = session.get("benchmarks")
    walls: Dict[str, float] = {}
    if isinstance(benchmarks, dict):
        for key, entry in benchmarks.items():
            if isinstance(entry, dict):
                wall = entry.get("wall_s")
                if isinstance(wall, (int, float)) and not isinstance(
                        wall, bool):
                    walls[str(key)] = float(wall)
    return walls


def _environment_drift(base: Mapping[str, object],
                       new: Mapping[str, object]) -> List[str]:
    base_env = base.get("environment")
    new_env = new.get("environment")
    if not isinstance(base_env, dict) or not isinstance(new_env, dict):
        return []
    drift = []
    for key in _ENV_KEYS:
        if base_env.get(key) != new_env.get(key):
            drift.append(
                f"{key}: {base_env.get(key)!r} -> {new_env.get(key)!r}")
    return drift


def compare_sessions(
    base: Mapping[str, object],
    new: Mapping[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
    min_runtime_s: float = DEFAULT_MIN_RUNTIME_S,
    base_label: str = "base",
    new_label: str = "new",
) -> Comparison:
    """Judge two decoded bench sessions (see module docstring)."""
    comparison = Comparison(
        base_label=base_label, new_label=new_label,
        tolerance=tolerance, min_runtime_s=min_runtime_s,
        environment_drift=_environment_drift(base, new),
    )
    base_walls = _wall_times(base)
    new_walls = _wall_times(new)
    for key in sorted(base_walls.keys() | new_walls.keys()):
        base_s = base_walls.get(key)
        new_s = new_walls.get(key)
        if base_s is None:
            status = "added"
        elif new_s is None:
            status = "removed"
        elif max(base_s, new_s) < min_runtime_s:
            status = "below-floor"
        elif base_s > 0 and new_s > base_s * (1 + tolerance):
            status = "regression"
        elif base_s > 0 and new_s < base_s * (1 - tolerance):
            status = "improvement"
        else:
            status = "ok"
        comparison.deltas.append(
            Delta(key=key, base_s=base_s, new_s=new_s, status=status))
    return comparison


def render_text(comparison: Comparison) -> str:
    """Aligned text verdict, regressions first."""
    lines = [
        f"perfreport: {comparison.base_label} -> {comparison.new_label} "
        f"(tolerance {comparison.tolerance:.0%}, floor "
        f"{comparison.min_runtime_s * 1e3:g} ms)"
    ]
    for note in comparison.environment_drift:
        lines.append(f"! environment drift — {note}")
    header = (f"{'status':<12} {'base_s':>10} {'new_s':>10} {'ratio':>7}  "
              "bench")
    lines += [header, "-" * len(header)]
    order = {"regression": 0, "improvement": 1, "added": 2, "removed": 3,
             "ok": 4, "below-floor": 5}
    for delta in sorted(comparison.deltas,
                        key=lambda d: (order[d.status], d.key)):
        base_s = f"{delta.base_s:.4f}" if delta.base_s is not None else "-"
        new_s = f"{delta.new_s:.4f}" if delta.new_s is not None else "-"
        ratio = f"{delta.ratio:.2f}x" if delta.ratio is not None else "-"
        lines.append(
            f"{delta.status:<12} {base_s:>10} {new_s:>10} {ratio:>7}  "
            f"{delta.key}")
    judged = [d for d in comparison.deltas
              if d.status in ("ok", "regression", "improvement")]
    lines.append(
        f"{len(comparison.regressions)} regression(s) across "
        f"{len(judged)} judged bench(es), {len(comparison.deltas)} total")
    return "\n".join(lines)


def render_json(comparison: Comparison) -> Dict[str, object]:
    """JSON-ready verdict for machine consumers (CI annotations)."""
    return {
        "base": comparison.base_label,
        "new": comparison.new_label,
        "tolerance": comparison.tolerance,
        "min_runtime_s": comparison.min_runtime_s,
        "environment_drift": list(comparison.environment_drift),
        "regressions": len(comparison.regressions),
        "deltas": [
            {
                "key": d.key,
                "base_s": d.base_s,
                "new_s": d.new_s,
                "ratio": d.ratio,
                "status": d.status,
            }
            for d in comparison.deltas
        ],
    }


__all__ = [
    "Comparison",
    "DEFAULT_MIN_RUNTIME_S",
    "DEFAULT_TOLERANCE",
    "Delta",
    "compare_sessions",
    "load_session",
    "render_json",
    "render_text",
    "__version__",
]
