"""flatlint — domain-aware static analysis for the Flat-tree repo.

An AST-based lint engine whose rules encode this repository's actual
invariants rather than generic style:

* **FT001 determinism** — no unseeded global RNG, no wall clock inside
  simulation code, no order-sensitive iteration over bare sets;
* **FT002 telemetry-contract** — literal ``obs.event`` names must be
  registered in :mod:`repro.obs.contract` (and vice versa: registered
  names must keep an emit site), required attributes checked;
* **FT003 hygiene** — mutable defaults, swallowing broad excepts,
  float ``==`` on capacity-like quantities;
* **FT004 layering** — module-scope imports follow a declared package
  DAG; ``repro.obs`` internals stay private.
* **FT005 bus-emission** — telemetry leaves through ``obs.publish`` /
  ``obs.event``; direct ``Sink.emit`` calls and ``obs.install_sink``
  stay inside ``repro.obs`` and ``repro.health``.
* **FT006 concurrency-safety** — interprocedural: state mutated both
  on a thread (reachable from a ``threading.Thread`` entry point over
  the project call graph) and on the main path, with no lock held on
  either route; bare ``.acquire()``; threads without a teardown path;
* **FT007 determinism-taint** — interprocedural: wall-clock / RNG /
  entropy values flowing through the call graph into replay-critical
  sinks (remediation ledger, health reports, bench/hotspot artifacts),
  reported with the full source-to-sink call path.

FT006/FT007 run on a whole-program symbol table and call graph
(:mod:`tools.flatlint.symbols`, :mod:`tools.flatlint.callgraph`);
export the graph with ``python -m tools.flatlint graph``.

Run ``python -m tools.flatlint src tests`` (see ``make lint``) or
``--changed-only`` for the git-diff-scoped fast path (``make
lint-fast``); suppress a finding in place with ``# flatlint:
disable=FT0xx``.  The full catalog lives in ``docs/static-analysis.md``.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from .engine import (
    Finding,
    PARSE_ERROR_CODE,
    Project,
    Rule,
    lint_paths,
    render_json,
    render_text,
)
from .rules import all_rules

__version__ = "2.0.0"

#: Packages held to mypy's strict flags in pyproject.toml — keep in
#: sync with the [[tool.mypy.overrides]] table (tests assert this).
MYPY_STRICT_PACKAGES: Tuple[str, ...] = (
    "repro.obs", "repro.monitor", "repro.chaos",
    "repro.health", "repro.selfheal",
)


def run(paths: List[str],
        select: Optional[Set[str]] = None,
        context_paths: Optional[List[str]] = None,
        ) -> Tuple[List[Finding], int]:
    """Lint *paths* with every registered rule.

    Returns ``(findings, files_checked)`` — the library entry point
    used by the CLI, ``flattree info`` and the test suite.  When
    *context_paths* is given, files found only there are parsed into
    the project (so the whole-program rules see the full call graph)
    but never produce findings and are not counted as checked.
    """
    findings, project = lint_paths(paths, all_rules(), select,
                                   context_paths=context_paths)
    checked = sum(1 for f in project.files if f.is_target)
    return findings, checked


def capability_line() -> str:
    """One-line lint capability summary for ``flattree info``."""
    rules = all_rules()
    codes = ", ".join(f"{rule.code} {rule.name}" for rule in rules)
    strict = ", ".join(MYPY_STRICT_PACKAGES)
    return (
        f"flatlint {len(rules)} rules ({codes}); "
        f"mypy strict on {strict} (make lint, docs/static-analysis.md)"
    )


__all__ = [
    "Finding",
    "MYPY_STRICT_PACKAGES",
    "PARSE_ERROR_CODE",
    "Project",
    "Rule",
    "all_rules",
    "capability_line",
    "lint_paths",
    "render_json",
    "render_text",
    "run",
    "__version__",
]
