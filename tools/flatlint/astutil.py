"""Small AST helpers shared by the flatlint rules."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@dataclass
class ImportMap:
    """What each local name in a file refers to, import-wise.

    ``modules`` maps a local name to the module it is bound to
    (``import numpy as np`` -> ``{"np": "numpy"}``); ``members`` maps a
    local name to ``(module, original_name)`` (``from random import
    choice as pick`` -> ``{"pick": ("random", "choice")}``).  Imports
    are collected from the whole file, including function bodies.
    """

    modules: Dict[str, str] = field(default_factory=dict)
    members: Dict[str, Tuple[str, str]] = field(default_factory=dict)

    @classmethod
    def of(cls, tree: ast.AST) -> "ImportMap":
        imports = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    bound = alias.name if alias.asname else alias.name.split(".")[0]
                    imports.modules[local] = bound
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    imports.members[local] = (node.module, alias.name)
        return imports

    def resolve_call(self, func: ast.AST) -> Optional[str]:
        """Fully-qualified dotted name of a call target, if resolvable.

        ``rnd.choice`` with ``import random as rnd`` resolves to
        ``random.choice``; ``pick`` with ``from random import choice as
        pick`` resolves to ``random.choice``; unknown bases resolve to
        the literal dotted chain (so callers can still pattern-match on
        ``obs.event``-style idioms).
        """
        dotted = dotted_name(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in self.modules:
            base = self.modules[head]
            return f"{base}.{rest}" if rest else base
        if head in self.members:
            module, original = self.members[head]
            qualified = f"{module}.{original}"
            return f"{qualified}.{rest}" if rest else qualified
        return dotted

    def resolve_imported(self, func: ast.AST) -> Optional[str]:
        """Like :meth:`resolve_call`, but only through an actual import.

        Returns None when the base name was never imported in this
        file — a local variable that happens to be called ``random``
        or ``time`` must not trigger module-level rules.
        """
        dotted = dotted_name(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head not in self.modules and head not in self.members:
            return None
        return self.resolve_call(func)
