"""flatlint core: source model, suppressions, rule driver, reporters.

The engine is deliberately small: it owns file collection, AST
parsing, ``# flatlint: disable=FT0xx`` suppression bookkeeping, and
the two-phase rule protocol (per-file ``check_file`` then cross-file
``finalize``).  Everything domain-specific lives in the rule modules
under :mod:`tools.flatlint.rules`.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

#: Suppression marker: ``# flatlint: disable=FT001`` or
#: ``# flatlint: disable=FT001,FT003`` or ``# flatlint: disable=all``
#: on the offending line.
_SUPPRESS_RE = re.compile(
    r"#\s*flatlint:\s*disable=([A-Za-z0-9_*,\s]+)"
)

#: Code used for files the engine itself rejects (syntax errors).
#: Not suppressable and not part of the rule registry.
PARSE_ERROR_CODE = "FT000"


@dataclass(frozen=True, order=True)
class Finding:
    """One lint violation, sortable into report order."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


def module_name_for(path: Path) -> str:
    """Dotted module name for *path* (``src/repro/x.py`` -> ``repro.x``).

    Anything under a ``src`` directory is rooted there; other files
    (tests, tools, benchmarks) are rooted at the repo-relative path, so
    layering rules can tell library modules from everything else.
    """
    parts = list(path.parts)
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    dotted = ".".join(parts)
    if dotted.endswith(".py"):
        dotted = dotted[:-3]
    if dotted.endswith(".__init__"):
        dotted = dotted[: -len(".__init__")]
    return dotted


def parse_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the codes suppressed on that line."""
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        codes = {
            token.strip().upper()
            for token in match.group(1).split(",")
            if token.strip()
        }
        if codes:
            out[lineno] = codes
    return out


@dataclass
class SourceFile:
    """A parsed Python file plus everything rules need to know about it."""

    path: Path
    display: str
    module: str
    source: str
    tree: ast.Module
    lines: List[str]
    suppressions: Dict[int, Set[str]]
    #: Context files (``--changed-only`` loads the whole program for
    #: the symbol table / call graph) are checked by no rule and can
    #: own no finding; only target files report.
    is_target: bool = True

    @classmethod
    def load(cls, path: Path) -> "SourceFile":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        lines = source.splitlines()
        return cls(
            path=path,
            display=str(path),
            module=module_name_for(path),
            source=source,
            tree=tree,
            lines=lines,
            suppressions=parse_suppressions(lines),
        )

    def suppressed(self, line: int, code: str) -> bool:
        codes = self.suppressions.get(line)
        if not codes:
            return False
        return code.upper() in codes or "ALL" in codes or "*" in codes

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        return Finding(
            path=self.display,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
        )


@dataclass
class Project:
    """All files of one lint run, for cross-file (``finalize``) rules.

    The whole-program views (:meth:`symbols`, :meth:`callgraph`) are
    built lazily on first use and cached for the run, so per-file-only
    invocations never pay for them.  Both cover *every* loaded file —
    targets and context alike — which is what lets ``--changed-only``
    keep interprocedural rules sound while reporting on a few files.
    """

    files: List[SourceFile] = field(default_factory=list)
    _symbols: Optional[object] = field(default=None, repr=False,
                                       compare=False)
    _callgraph: Optional[object] = field(default=None, repr=False,
                                         compare=False)

    def by_module(self, dotted: str) -> Optional[SourceFile]:
        for f in self.files:
            if f.module == dotted:
                return f
        return None

    def symbols(self):
        """The project-wide :class:`tools.flatlint.symbols.SymbolTable`."""
        if self._symbols is None:
            from .symbols import SymbolTable
            self._symbols = SymbolTable(self.files)
        return self._symbols

    def callgraph(self):
        """The whole-program :class:`tools.flatlint.callgraph.CallGraph`."""
        if self._callgraph is None:
            from .callgraph import CallGraph
            self._callgraph = CallGraph(self.symbols())
        return self._callgraph


class Rule:
    """Base class for flatlint rules.

    Subclasses set ``code`` (stable ``FT0xx`` identifier), ``name``
    (short slug) and ``summary`` (one line for ``--list-rules``), and
    implement :meth:`check_file`; cross-file rules also implement
    :meth:`finalize`, called once after every file was checked.  Rules
    are instantiated fresh per run, so per-run state lives on ``self``.
    """

    code: str = ""
    name: str = ""
    summary: str = ""

    def check_file(self, f: SourceFile) -> Iterable[Finding]:
        return ()

    def finalize(self, project: Project) -> Iterable[Finding]:
        return ()


def collect_files(paths: Sequence[str]) -> List[Path]:
    """Expand *paths* (files or directories) into sorted ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            out.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {raw}")
    seen: Set[Path] = set()
    unique: List[Path] = []
    for path in out:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def lint_paths(
    paths: Sequence[str],
    rules: Sequence[Rule],
    select: Optional[Set[str]] = None,
    context_paths: Optional[Sequence[str]] = None,
) -> tuple[List[Finding], Project]:
    """Run *rules* over every file under *paths*; return sorted findings.

    *context_paths* files are loaded into the project (so cross-file
    rules and the symbol table / call graph see the whole program) but
    are not themselves checked and own no findings — the
    ``--changed-only`` machinery.  A context file that fails to parse
    is skipped silently; it would be reported when linted as a target.
    """
    active = [
        r for r in rules
        if select is None or r.code.upper() in select
    ]
    project = Project()
    findings: List[Finding] = []
    loaded: Set[Path] = set()
    for path in collect_files(paths):
        loaded.add(path.resolve())
        try:
            f = SourceFile.load(path)
        except SyntaxError as exc:
            findings.append(Finding(
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                code=PARSE_ERROR_CODE,
                message=f"cannot parse file: {exc.msg}",
            ))
            continue
        project.files.append(f)
        for rule in active:
            for finding in rule.check_file(f):
                if not f.suppressed(finding.line, finding.code):
                    findings.append(finding)
    if context_paths:
        for path in collect_files(context_paths):
            if path.resolve() in loaded:
                continue
            loaded.add(path.resolve())
            try:
                f = SourceFile.load(path)
            except SyntaxError:
                continue
            f.is_target = False
            project.files.append(f)
    for rule in active:
        for finding in rule.finalize(project):
            owner = next(
                (f for f in project.files if f.display == finding.path), None)
            if owner is not None and not owner.is_target:
                continue
            if owner is not None and owner.suppressed(finding.line,
                                                      finding.code):
                continue
            findings.append(finding)
    return sorted(findings), project


def render_text(findings: Sequence[Finding], files_checked: int) -> str:
    lines = [finding.format() for finding in findings]
    if findings:
        counts: Dict[str, int] = {}
        for finding in findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        breakdown = ", ".join(
            f"{code}: {n}" for code, n in sorted(counts.items()))
        lines.append(
            f"flatlint: {len(findings)} finding(s) in {files_checked} "
            f"file(s) ({breakdown})"
        )
    else:
        lines.append(f"flatlint: {files_checked} file(s) clean")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_checked: int) -> str:
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    return json.dumps(
        {
            "files_checked": files_checked,
            "findings": [finding.as_dict() for finding in findings],
            "counts": counts,
        },
        indent=2,
        sort_keys=True,
    )
