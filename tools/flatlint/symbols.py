"""Project-wide symbol table for whole-program flatlint analyses.

The per-file rules (FT001–FT005) only ever needed an import map; the
interprocedural rules (FT006 concurrency-safety, FT007
determinism-taint) need to answer *who is this call talking to* across
file boundaries.  :class:`SymbolTable` indexes every module, class,
method and function of one lint run and provides the resolution
heuristics the call-graph builder (:mod:`tools.flatlint.callgraph`)
leans on:

* dotted-name resolution through imports, including one-hop re-exports
  (``from repro import obs`` + ``obs.event`` lands on
  ``repro.obs.trace.event`` because ``repro/obs/__init__.py`` re-exports
  it);
* **assigned-type inference** — ``self.engine = RemediationEngine()``
  or an ``engine: Optional[RemediationEngine]`` parameter stored on
  ``self`` types the attribute, so ``self.engine.poll(...)`` resolves
  to a concrete method;
* **bound-method aliases** — ``self._forward = inner.emit`` records the
  *method name*, so calling ``self._forward(...)`` widens to every
  project method called ``emit`` instead of silently dropping the edge;
* synchronization-primitive tagging (``self._lock = threading.Lock()``)
  so FT006 can tell a lock attribute from shared state.

Everything here is a heuristic over the AST, not a type checker: the
contract is *resolve what the repo's idioms make resolvable, widen the
rest* — an unresolved callee must never make an analysis silently
optimistic (see the FT007 unknown-callee tests).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .astutil import ImportMap, dotted_name

__all__ = ["FunctionInfo", "ClassInfo", "SymbolTable", "SYNC_PRIMITIVES",
           "BUILTIN_CONTAINERS"]

#: ``threading`` primitives that are synchronization tools, not shared
#: state: FT006 must not flag ``Event.set()`` races the stdlib already
#: guards.
SYNC_PRIMITIVES = (
    "threading.Lock",
    "threading.RLock",
    "threading.Event",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "threading.Barrier",
)

#: Resolution recursion bound (re-export chains, base-class walks).
_MAX_DEPTH = 8

#: Builtin/stdlib container constructors.  A receiver known to hold one
#: of these dispatches into the stdlib, never into the project, so the
#: call-graph builder skips name-widening for it — otherwise every
#: ``seen.add(x)`` on a local ``set()`` would grow a widened edge to
#: every project method called ``add``.
BUILTIN_CONTAINERS = frozenset({
    "set", "dict", "list", "frozenset", "tuple", "bytearray",
    "dict.fromkeys",
    "collections.deque", "collections.defaultdict",
    "collections.OrderedDict", "collections.Counter",
})


@dataclass
class FunctionInfo:
    """One function, method, or module body in the project."""

    qualname: str                 # module.Class.method / module.func
    module: str
    name: str
    cls: Optional[str]            # owning class qualname (None for funcs)
    node: ast.AST                 # FunctionDef / AsyncFunctionDef / Module
    path: str                     # display path of the defining file
    lineno: int
    #: Project classes the return annotation names (``-> HealthAggregator``).
    returns: Set[str] = field(default_factory=set)

    @property
    def is_module_body(self) -> bool:
        return isinstance(self.node, ast.Module)


@dataclass
class ClassInfo:
    """One class: methods, bases, and inferred attribute types."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    path: str
    lineno: int
    #: Resolved base names — project class qualnames where resolvable,
    #: otherwise the import-resolved dotted name (``threading.Thread``).
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: attr -> candidate project-class qualnames (assigned-type heuristic).
    attr_types: Dict[str, Set[str]] = field(default_factory=dict)
    #: attr -> method *names* it aliases (``self._forward = inner.emit``).
    attr_methods: Dict[str, Set[str]] = field(default_factory=dict)
    #: attr -> the ``threading`` primitive it holds (``threading.Lock``).
    attr_sync: Dict[str, str] = field(default_factory=dict)
    #: attrs assigned a builtin container (``self._counts = {}``) —
    #: method calls on them stay in the stdlib, so no name-widening.
    attr_builtin: Set[str] = field(default_factory=set)


class SymbolTable:
    """Modules, classes, functions and inferred types of one lint run."""

    def __init__(self, files: Sequence[object]) -> None:
        #: module name -> SourceFile (anything with .module/.tree/.display)
        self.modules: Dict[str, object] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.imports: Dict[str, ImportMap] = {}
        #: module -> module-level var -> candidate project classes
        #: (``_state = _State()`` in repro.obs.trace).
        self.module_attr_types: Dict[str, Dict[str, Set[str]]] = {}
        #: method name -> every project method with that name (widening).
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}
        #: class qualname -> direct project subclasses.
        self.subclasses: Dict[str, List[str]] = {}

        for f in files:
            self._collect_declarations(f)
        for cls in self.classes.values():
            self._resolve_bases(cls)
        for cls in self.classes.values():
            self._infer_class_attrs(cls)
        for f in files:
            self._infer_module_vars(f)
        for fn in self.functions.values():
            if isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn.returns = self.annotation_classes(fn.module,
                                                     fn.node.returns)

    # ------------------------------------------------------------------
    # pass 1: declarations
    # ------------------------------------------------------------------
    def _collect_declarations(self, f: object) -> None:
        module: str = f.module          # type: ignore[attr-defined]
        tree: ast.Module = f.tree       # type: ignore[attr-defined]
        path: str = f.display           # type: ignore[attr-defined]
        self.modules[module] = f
        self.imports[module] = ImportMap.of(tree)
        # Module body is a pseudo-function so import-time calls get a
        # caller node in the graph.
        self.functions[module] = FunctionInfo(
            qualname=module, module=module, name="<module>", cls=None,
            node=tree, path=path, lineno=1)
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{module}.{node.name}"
                self.functions[qual] = FunctionInfo(
                    qualname=qual, module=module, name=node.name, cls=None,
                    node=node, path=path, lineno=node.lineno)
            elif isinstance(node, ast.ClassDef):
                cls_qual = f"{module}.{node.name}"
                info = ClassInfo(
                    qualname=cls_qual, module=module, name=node.name,
                    node=node, path=path, lineno=node.lineno)
                self.classes[cls_qual] = info
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        mq = f"{cls_qual}.{item.name}"
                        method = FunctionInfo(
                            qualname=mq, module=module, name=item.name,
                            cls=cls_qual, node=item, path=path,
                            lineno=item.lineno)
                        self.functions[mq] = method
                        info.methods[item.name] = method
                        self.methods_by_name.setdefault(
                            item.name, []).append(method)

    # ------------------------------------------------------------------
    # pass 2: bases, attribute types
    # ------------------------------------------------------------------
    def _resolve_bases(self, cls: ClassInfo) -> None:
        imap = self.imports[cls.module]
        for base in cls.node.bases:
            raw = dotted_name(base)
            if raw is None:
                continue
            project = self.resolve(cls.module, raw)
            if project is not None and project in self.classes:
                cls.bases.append(project)
                self.subclasses.setdefault(project, []).append(cls.qualname)
            else:
                cls.bases.append(imap.resolve_call(base) or raw)

    def _infer_class_attrs(self, cls: ClassInfo) -> None:
        for method in cls.methods.values():
            node = method.node
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            self_name = _self_param(node)
            if self_name is None:
                continue
            param_types = self._param_types(cls.module, node)
            for stmt in ast.walk(node):
                target = value = annotation = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    target, value = stmt.target, stmt.value
                    annotation = stmt.annotation
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == self_name):
                    continue
                attr = target.attr
                if annotation is not None:
                    hinted = self.annotation_classes(cls.module, annotation)
                    if hinted:
                        cls.attr_types.setdefault(attr, set()).update(hinted)
                self._record_attr_value(cls, attr, value, param_types)

    def _record_attr_value(self, cls: ClassInfo, attr: str,
                           value: Optional[ast.AST],
                           param_types: Dict[str, Set[str]]) -> None:
        if value is None:
            return
        imap = self.imports[cls.module]
        if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.Tuple,
                              ast.DictComp, ast.ListComp, ast.SetComp)):
            cls.attr_builtin.add(attr)
            return
        if isinstance(value, ast.Call):
            external = imap.resolve_call(value.func)
            if external in SYNC_PRIMITIVES:
                cls.attr_sync[attr] = external
                return
            if external in BUILTIN_CONTAINERS:
                cls.attr_builtin.add(attr)
                return
            hit = self.expr_classes(cls.module, value, param_types)
            if hit:
                cls.attr_types.setdefault(attr, set()).update(hit)
        elif isinstance(value, ast.Attribute):
            # self._forward = inner.emit — a bound-method alias.
            cls.attr_methods.setdefault(attr, set()).add(value.attr)
        else:
            hit = self.expr_classes(cls.module, value, param_types)
            if hit:
                cls.attr_types.setdefault(attr, set()).update(hit)

    def _param_types(self, module: str,
                     node: ast.AST) -> Dict[str, Set[str]]:
        """Parameter name -> project classes its annotation names."""
        out: Dict[str, Set[str]] = {}
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return out
        args = node.args
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            hinted = self.annotation_classes(module, arg.annotation)
            if hinted:
                out[arg.arg] = hinted
        return out

    def _infer_module_vars(self, f: object) -> None:
        module: str = f.module          # type: ignore[attr-defined]
        tree: ast.Module = f.tree       # type: ignore[attr-defined]
        types: Dict[str, Set[str]] = {}
        for node in tree.body:
            target = value = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
            if not isinstance(target, ast.Name) or value is None:
                continue
            hit = self.expr_classes(module, value, {})
            if hit:
                types.setdefault(target.id, set()).update(hit)
        if types:
            self.module_attr_types[module] = types

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve(self, module: str, dotted: Optional[str],
                _depth: int = 0) -> Optional[str]:
        """Project qualname a dotted local name refers to, or None.

        Follows imports (including aliased ones) and one-hop
        re-exports; descends into a class for ``Class.method`` chains.
        Returns a module, class, function or method qualname.
        """
        if not dotted or _depth > _MAX_DEPTH or module not in self.modules:
            return None
        head, _, rest = dotted.partition(".")
        local = f"{module}.{head}"
        if local in self.classes:
            return self._class_member(local, rest) if rest else local
        if local in self.functions and not rest:
            return local
        imap = self.imports.get(module)
        if imap is None:
            return None
        if head in imap.modules:
            target = imap.modules[head]
            if not rest:
                return target if target in self.modules else None
            return self.resolve(target, rest, _depth + 1)
        if head in imap.members:
            mod, orig = imap.members[head]
            reexport = f"{mod}.{orig}"
            if reexport in self.modules:
                if not rest:
                    return reexport
                return self.resolve(reexport, rest, _depth + 1)
            combined = orig + (f".{rest}" if rest else "")
            return self.resolve(mod, combined, _depth + 1)
        return None

    def _class_member(self, cls_qual: str, rest: str) -> Optional[str]:
        name = rest.split(".", 1)[0]
        return self.lookup_method(cls_qual, name)

    def lookup_method(self, cls_qual: str, name: str,
                      _depth: int = 0) -> Optional[str]:
        """Method qualname on the class or its project bases (MRO-lite)."""
        if _depth > _MAX_DEPTH:
            return None
        cls = self.classes.get(cls_qual)
        if cls is None:
            return None
        method = cls.methods.get(name)
        if method is not None:
            return method.qualname
        for base in cls.bases:
            hit = self.lookup_method(base, name, _depth + 1)
            if hit is not None:
                return hit
        return None

    def overrides(self, method_qual: str) -> List[str]:
        """Same-name overrides of a method in project subclasses."""
        fn = self.functions.get(method_qual)
        if fn is None or fn.cls is None:
            return []
        out: List[str] = []
        stack = list(self.subclasses.get(fn.cls, ()))
        seen: Set[str] = set()
        while stack:
            sub = stack.pop()
            if sub in seen:
                continue
            seen.add(sub)
            info = self.classes.get(sub)
            if info is None:
                continue
            own = info.methods.get(fn.name)
            if own is not None:
                out.append(own.qualname)
            stack.extend(self.subclasses.get(sub, ()))
        return out

    def has_external_base(self, cls_qual: str, external: str,
                          _depth: int = 0) -> bool:
        """Does the class inherit (transitively) from e.g. threading.Thread?"""
        if _depth > _MAX_DEPTH:
            return False
        cls = self.classes.get(cls_qual)
        if cls is None:
            return False
        for base in cls.bases:
            if base == external:
                return True
            if self.has_external_base(base, external, _depth + 1):
                return True
        return False

    # ------------------------------------------------------------------
    # type heuristics
    # ------------------------------------------------------------------
    def annotation_classes(self, module: str,
                           node: Optional[ast.AST],
                           _depth: int = 0) -> Set[str]:
        """Project classes an annotation expression names.

        Unwraps ``Optional[X]`` / ``Union`` / ``X | None`` / container
        generics and string annotations; the result is the *union* of
        every project class mentioned, which collapses
        ``Sequence["SloTracker"]`` to ``{SloTracker}`` — exactly what
        for-loop element typing wants.
        """
        if node is None or _depth > _MAX_DEPTH:
            return set()
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return set()
        if isinstance(node, (ast.Name, ast.Attribute)):
            qual = self.resolve(module, dotted_name(node))
            return {qual} if qual in self.classes else set()
        if isinstance(node, ast.Subscript):
            elts = (node.slice.elts if isinstance(node.slice, ast.Tuple)
                    else [node.slice])
            out: Set[str] = set()
            for elt in elts:
                out |= self.annotation_classes(module, elt, _depth + 1)
            return out
        if isinstance(node, ast.BinOp):        # X | None
            return (self.annotation_classes(module, node.left, _depth + 1)
                    | self.annotation_classes(module, node.right,
                                              _depth + 1))
        return set()

    def expr_classes(self, module: str, node: Optional[ast.AST],
                     local_types: Dict[str, Set[str]],
                     _depth: int = 0) -> Set[str]:
        """Candidate project classes of an expression's value."""
        if node is None or _depth > _MAX_DEPTH:
            return set()
        if isinstance(node, ast.Call):
            qual = self.resolve(module, dotted_name(node.func))
            if qual in self.classes:
                return {qual}
            fn = self.functions.get(qual) if qual else None
            if fn is not None:
                return set(fn.returns)
            return set()
        if isinstance(node, ast.Name):
            return set(local_types.get(node.id, ())) \
                | set(self.module_attr_types.get(module, {})
                      .get(node.id, ()))
        if isinstance(node, ast.Attribute):
            out: Set[str] = set()
            for base in self.expr_classes(module, node.value, local_types,
                                          _depth + 1):
                out |= self.attr_classes(base, node.attr)
            return out
        if isinstance(node, ast.BoolOp):       # x or Fallback()
            out = set()
            for value in node.values:
                out |= self.expr_classes(module, value, local_types,
                                         _depth + 1)
            return out
        if isinstance(node, ast.IfExp):
            return (self.expr_classes(module, node.body, local_types,
                                      _depth + 1)
                    | self.expr_classes(module, node.orelse, local_types,
                                        _depth + 1))
        if isinstance(node, ast.Await):
            return self.expr_classes(module, node.value, local_types,
                                     _depth + 1)
        return set()

    def is_builtin_attr(self, cls_qual: str, attr: str,
                        _depth: int = 0) -> bool:
        """Is ``<cls>.attr`` stdlib-typed (container or sync primitive)?

        Such receivers dispatch into the stdlib, never the project, so
        the call-graph builder must not name-widen them —
        ``self._stop.set()`` on a ``threading.Event`` is not a
        candidate call to every project method named ``set``.
        """
        if _depth > _MAX_DEPTH:
            return False
        cls = self.classes.get(cls_qual)
        if cls is None:
            return False
        if attr in cls.attr_builtin or attr in cls.attr_sync:
            return True
        return any(self.is_builtin_attr(base, attr, _depth + 1)
                   for base in cls.bases)

    def attr_classes(self, cls_qual: str, attr: str,
                     _depth: int = 0) -> Set[str]:
        """Inferred types of ``<cls>.attr``, searching project bases."""
        if _depth > _MAX_DEPTH:
            return set()
        cls = self.classes.get(cls_qual)
        if cls is None:
            return set()
        hit = cls.attr_types.get(attr)
        if hit:
            return set(hit)
        out: Set[str] = set()
        for base in cls.bases:
            out |= self.attr_classes(base, attr, _depth + 1)
        return out


def _self_param(node: ast.AST) -> Optional[str]:
    """The instance-parameter name of a method (None for staticmethods)."""
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    for deco in node.decorator_list:
        if isinstance(deco, ast.Name) and deco.id in ("staticmethod",
                                                      "classmethod"):
            return None
    params = list(node.args.posonlyargs) + list(node.args.args)
    return params[0].arg if params else None
