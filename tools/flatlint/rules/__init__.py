"""The flatlint rule registry.

Rules self-register with :func:`register`; :func:`all_rules` imports
the rule modules (deferred, so the registry module itself stays
import-cycle-free) and returns one fresh instance per rule, sorted by
code.  Codes are stable — ``FT001`` will always mean determinism —
because suppression comments and CI logs depend on them.
"""

from __future__ import annotations

from typing import Dict, List, Type

from ..engine import Rule

_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    if not cls.code or not cls.code.startswith("FT"):
        raise ValueError(f"rule {cls.__name__} needs a stable FT0xx code")
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, ordered by code."""
    from . import (bus, concurrency, determinism, hygiene,  # noqa: F401
                   layering, taint, telemetry)

    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]
