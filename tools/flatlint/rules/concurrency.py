"""FT006 — concurrency safety across the thread boundary.

The repo runs three daemon threads (the sampling profiler, the health
tee on the telemetry bus, the self-heal loop) against state that main-
thread code also touches: the aggregator consumed live *and* replayed
offline, the remediation engine polled from both sides, the sampler's
duration bookkeeping.  A per-file linter cannot see that boundary;
this rule walks the whole-program call graph instead.

The analysis:

1. **Thread entry points** — ``threading.Thread(target=...)``
   arguments, ``run()`` of ``threading.Thread`` subclasses, and the
   ``emit`` method of anything handed to ``obs.install_sink`` (the bus
   tee runs on whatever thread emits).
2. **Reachability** — functions reachable from an entry form the
   *thread side*; functions reachable from any other ``repro.*``
   function form the *main side*.  A dual-use function (the
   aggregator's ``consume``) sits on both.
3. **Mutations** — writes to instance attributes (through ``self`` or
   any typed receiver), mutating container-method calls
   (``.append``/``.pop``/``.setdefault``/...), and module-global
   writes, each tagged with whether the site sat lexically under
   ``with <lock>:``.  ``__init__``-family methods and module bodies
   are construction, not sharing, and are excluded; ``threading``
   primitives (Events, Locks) guard themselves and are exempt.
4. **Lock-bounded paths** — reachability never traverses a call made
   under ``with <lock>:``, so a lock at *any* frame protects the whole
   cone below it: the aggregator's lock around ``consume`` covers the
   rollups and rule/SLO evaluation it drives, the engine's lock around
   ``poll`` covers the executor→controller→topology chain.  A finding
   therefore means some path from a thread entry reaches the mutation
   with **no lock held anywhere along it**, while an equally unlocked
   main-side path exists too.  Lock *identity* is not tracked: FT006
   proves the absence of unlocked cross-thread mutation pairs, not
   full race-freedom.

A finding fires when one piece of state is mutated unprotected on both
sides.  Two lexical checks ride along: bare ``.acquire()`` on a lock
(use ``with``), and ``threading.Thread`` construction with no
``join()`` teardown path.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..astutil import ImportMap, dotted_name
from ..callgraph import lockish_expr, type_env
from ..engine import Finding, Project, Rule, SourceFile
from . import register

#: Call targets that hand a callback sink to the bus (its ``emit``
#: then runs on every emitting thread).
_INSTALL_SINK_CALLS = {
    "repro.obs.install_sink",
    "repro.obs.trace.install_sink",
    "obs.install_sink",
    "trace.install_sink",
}

#: Container methods that mutate their receiver.
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "remove", "discard", "pop",
    "popleft", "popitem", "clear", "update", "setdefault", "sort",
    "reverse", "appendleft",
})

#: Methods where instance state is *constructed*, not shared.
_INIT_METHODS = frozenset({"__init__", "__new__", "__post_init__"})

_THREAD_CLASS = "threading.Thread"


def _in_repro(module: str) -> bool:
    return module == "repro" or module.startswith("repro.")


@dataclass(frozen=True)
class _Site:
    """One mutation site."""

    fn: str             # qualname of the containing function
    path: str           # display path of the file
    line: int
    col: int
    under_lock: bool


class _MutationScanner:
    """Collects mutation sites for one function, with lock context."""

    def __init__(self, symtab: object, fn: object,
                 module_globals: Set[str],
                 out: Dict[Tuple[str, str], List[_Site]]) -> None:
        self.symtab = symtab
        self.fn = fn
        self.module_globals = module_globals
        self.out = out
        self.self_name, self.local_types = type_env(symtab, fn)
        self.global_decls: Set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                self.global_decls.update(node.names)

    def scan(self) -> None:
        for stmt in getattr(self.fn.node, "body", ()):
            self._visit(stmt, under_lock=False)

    def _visit(self, node: ast.AST, under_lock: bool) -> None:
        if isinstance(node, ast.ClassDef):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            locked = under_lock
            for item in node.items:
                self._visit(item.context_expr, under_lock)
                if lockish_expr(self.symtab, self.fn.module,
                                item.context_expr):
                    locked = True
            for stmt in node.body:
                self._visit(stmt, locked)
            return
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._target(target, node, under_lock)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._target(node.target, node, under_lock)
        elif isinstance(node, ast.AugAssign):
            self._target(node.target, node, under_lock)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._target(target, node, under_lock)
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in _MUTATOR_METHODS):
                self._record_receiver(func.value, node, under_lock)
        for child in ast.iter_child_nodes(node):
            self._visit(child, under_lock)

    # -- key derivation -------------------------------------------------
    def _target(self, target: ast.AST, site: ast.AST,
                under_lock: bool) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._target(element, site, under_lock)
        elif isinstance(target, ast.Attribute):
            self._record_owner(target.value, target.attr, site, under_lock)
        elif isinstance(target, ast.Subscript):
            self._record_receiver(target.value, site, under_lock)
        elif isinstance(target, ast.Name):
            name = target.id
            if name in self.global_decls or (
                    name in self.module_globals
                    and isinstance(site, (ast.AugAssign, ast.Delete))):
                self._record((self.fn.module, name), site, under_lock)

    def _record_receiver(self, receiver: ast.AST, site: ast.AST,
                         under_lock: bool) -> None:
        """Mutating a container: key it by who owns the container."""
        if isinstance(receiver, ast.Attribute):
            self._record_owner(receiver.value, receiver.attr, site,
                               under_lock)
        elif isinstance(receiver, ast.Name):
            if receiver.id in self.module_globals \
                    and receiver.id not in self.local_types:
                self._record((self.fn.module, receiver.id), site,
                             under_lock)

    def _record_owner(self, owner_expr: ast.AST, attr: str, site: ast.AST,
                      under_lock: bool) -> None:
        owners: Set[str] = set()
        if isinstance(owner_expr, ast.Name) \
                and owner_expr.id == self.self_name \
                and self.fn.cls is not None:
            owners.add(self.fn.cls)
        else:
            owners |= self.symtab.expr_classes(
                self.fn.module, owner_expr, self.local_types)
            if isinstance(owner_expr, ast.Name) \
                    and not owners \
                    and owner_expr.id in self.module_globals \
                    and owner_expr.id not in self.local_types:
                # Attribute write through an untyped module-level
                # object: key by the module variable itself.
                self._record((self.fn.module, owner_expr.id), site,
                             under_lock)
                return
        for owner in owners:
            cls = self.symtab.classes.get(owner)
            if cls is not None and attr in cls.attr_sync:
                continue        # threading primitives guard themselves
            self._record((owner, attr), site, under_lock)

    def _record(self, key: Tuple[str, str], site: ast.AST,
                under_lock: bool) -> None:
        self.out.setdefault(key, []).append(_Site(
            fn=self.fn.qualname, path=self.fn.path,
            line=getattr(site, "lineno", self.fn.lineno),
            col=getattr(site, "col_offset", 0) + 1,
            under_lock=under_lock))


@register
class ConcurrencyRule(Rule):
    code = "FT006"
    name = "concurrency-safety"
    summary = ("state mutated both on a thread path (Thread targets, "
               "Thread.run, install_sink callbacks) and on the main "
               "path must hold a lock; plus bare .acquire() and "
               "threads without a join() teardown")

    # ------------------------------------------------------------------
    # per-file: bare .acquire() on locks
    # ------------------------------------------------------------------
    def check_file(self, f: SourceFile) -> Iterator[Finding]:
        if not _in_repro(f.module):
            return
        for node in ast.walk(f.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr == "acquire"):
                continue
            receiver = dotted_name(func.value)
            if receiver is not None \
                    and "lock" in receiver.rsplit(".", 1)[-1].lower():
                yield f.finding(
                    node, self.code,
                    f"bare {receiver}.acquire() — acquire locks with "
                    "'with ...:' so every exit path releases them",
                )

    # ------------------------------------------------------------------
    # whole-program: cross-thread mutation analysis
    # ------------------------------------------------------------------
    def finalize(self, project: Project) -> Iterator[Finding]:
        repro_files = [f for f in project.files if _in_repro(f.module)]
        if not repro_files:
            return
        symtab = project.symbols()
        graph = project.callgraph()

        entries, entry_why = self._thread_entries(symtab, repro_files)
        yield from self._teardown_findings(symtab, repro_files)
        if not entries:
            return

        # Lock-bounded reachability: an edge taken under ``with lock:``
        # is not traversed, so a lock at *any* frame protects the whole
        # cone below it (engine.poll's lock covers the executor ->
        # controller -> topology chain without a lock in each).
        thread_unlocked = graph.reachable(entries, unlocked_only=True)
        thread_all = graph.reachable(entries)
        repro_fns = {
            q for q, fn in symtab.functions.items()
            if _in_repro(fn.module)
        }
        main_roots = repro_fns - set(thread_all)
        main_unlocked = set(graph.reachable(main_roots,
                                            unlocked_only=True))

        mutations: Dict[Tuple[str, str], List[_Site]] = {}
        for f in repro_files:
            for qual, fn in symtab.functions.items():
                if fn.path != f.display or fn.is_module_body:
                    continue
                if fn.name in _INIT_METHODS:
                    continue
                _MutationScanner(symtab, fn,
                                 self._module_globals(symtab, fn.module),
                                 mutations).scan()

        for key in sorted(mutations):
            sites = mutations[key]
            unprot = [s for s in sites if not s.under_lock]
            inside = [s for s in unprot if s.fn in thread_unlocked]
            outside = [s for s in unprot if s.fn in main_unlocked]
            if not inside or not outside:
                continue
            site = min(inside, key=lambda s: (s.path, s.line, s.col))
            other = min((s for s in outside if s is not site),
                        key=lambda s: (s.path, s.line, s.col),
                        default=None)
            owner, attr = key
            chain = graph.path_to(thread_unlocked, site.fn)
            origin = chain[0]
            why = entry_why.get(origin, "thread entry")
            route = " -> ".join(chain[-4:])
            if other is None:
                where = ("here — the function runs on both the thread "
                         "and the main path")
            else:
                where = (f"here and on the main path at "
                         f"{other.path}:{other.line}")
            yield Finding(
                path=site.path, line=site.line, col=site.col,
                code=self.code,
                message=(
                    f"{owner}.{attr} is mutated on a thread path "
                    f"({why}; via {route}) {where} without a common "
                    "lock — guard both sites with the owning object's "
                    "lock or hand the data off thread-locally"),
            )

    # ------------------------------------------------------------------
    def _module_globals(self, symtab: object, module: str) -> Set[str]:
        f = symtab.modules.get(module)
        if f is None:
            return set()
        out: Set[str] = set()
        for node in f.tree.body:
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    out.add(target.id)
        return out

    def _thread_entries(self, symtab: object,
                        repro_files: List[SourceFile],
                        ) -> Tuple[Set[str], Dict[str, str]]:
        """Entry functions plus a human-readable reason per entry."""
        entries: Set[str] = set()
        why: Dict[str, str] = {}

        def add(qual: Optional[str], reason: str) -> None:
            if qual is not None:
                entries.add(qual)
                why.setdefault(qual, reason)

        # run() of threading.Thread subclasses.
        for cls_qual, cls in symtab.classes.items():
            if not _in_repro(cls.module):
                continue
            if symtab.has_external_base(cls_qual, _THREAD_CLASS):
                add(symtab.lookup_method(cls_qual, "run"),
                    f"{cls.name} subclasses threading.Thread")

        for f in repro_files:
            imap = ImportMap.of(f.tree)
            for qual, fn in symtab.functions.items():
                if fn.path != f.display:
                    continue
                self_name, local_types = type_env(symtab, fn)
                for node in ast.walk(fn.node):
                    if not isinstance(node, ast.Call):
                        continue
                    resolved = imap.resolve_call(node.func)
                    if resolved == _THREAD_CLASS:
                        target = next(
                            (kw.value for kw in node.keywords
                             if kw.arg == "target"), None)
                        if target is None and node.args:
                            # Thread(group, target) positional form.
                            target = node.args[1] if len(node.args) > 1 \
                                else None
                        for entry in self._callable_targets(
                                symtab, fn, target, local_types):
                            add(entry, "threading.Thread target")
                    elif resolved in _INSTALL_SINK_CALLS \
                            or symtab.resolve(
                                fn.module,
                                dotted_name(node.func)) in (
                                "repro.obs.trace.install_sink",):
                        if not node.args:
                            continue
                        sink_classes = symtab.expr_classes(
                            fn.module, node.args[0], local_types)
                        if sink_classes:
                            for cls_qual in sorted(sink_classes):
                                add(symtab.lookup_method(cls_qual, "emit"),
                                    "install_sink callback")
                                for override in symtab.overrides(
                                        symtab.lookup_method(cls_qual,
                                                             "emit") or ""):
                                    add(override, "install_sink callback")
                        else:
                            # Unresolvable sink: widen to every emit.
                            for method in symtab.methods_by_name.get(
                                    "emit", ()):
                                if _in_repro(method.module):
                                    add(method.qualname,
                                        "install_sink callback (widened)")
        return entries, why

    def _callable_targets(self, symtab: object, fn: object,
                          target: Optional[ast.AST],
                          local_types: Dict[str, Set[str]]) -> List[str]:
        if target is None:
            return []
        out: List[str] = []
        if isinstance(target, ast.Attribute):
            receivers = symtab.expr_classes(fn.module, target.value,
                                            local_types)
            for cls_qual in sorted(receivers):
                method = symtab.lookup_method(cls_qual, target.attr)
                if method is not None:
                    out.append(method)
            if not out:         # widen by name rather than drop
                out = [m.qualname for m in
                       symtab.methods_by_name.get(target.attr, ())
                       if _in_repro(m.module)]
        elif isinstance(target, ast.Name):
            qual = symtab.resolve(fn.module, target.id)
            if qual is not None and qual in symtab.functions:
                out.append(qual)
        return out

    def _teardown_findings(self, symtab: object,
                           repro_files: List[SourceFile],
                           ) -> Iterator[Finding]:
        for f in repro_files:
            imap = ImportMap.of(f.tree)
            joined_attrs = self._joined_self_attrs(f)
            for node in ast.walk(f.tree):
                if not isinstance(node, ast.Call) \
                        or imap.resolve_call(node.func) != _THREAD_CLASS:
                    continue
                verdict = self._thread_retained(f, node, joined_attrs)
                if verdict is not None:
                    yield f.finding(node, self.code, verdict)

    def _joined_self_attrs(self, f: SourceFile) -> Set[str]:
        """self attributes that have a ``self.<attr>.join(...)`` site."""
        out: Set[str] = set()
        for node in ast.walk(f.tree):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "join" \
                    and isinstance(node.func.value, ast.Attribute) \
                    and isinstance(node.func.value.value, ast.Name):
                out.add(node.func.value.attr)
        return out

    def _thread_retained(self, f: SourceFile, ctor: ast.Call,
                         joined_attrs: Set[str]) -> Optional[str]:
        """None when the thread has a teardown path, else the finding."""
        for node in ast.walk(f.tree):
            # self.X = threading.Thread(...): joined iff self.X.join()
            # appears somewhere in the file.
            if isinstance(node, ast.Assign) and node.value is ctor:
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        if target.attr in joined_attrs:
                            return None
                        return (f"thread stored on self.{target.attr} is "
                                "never join()ed — give it a stop()/join() "
                                "teardown path")
                    if isinstance(target, ast.Name):
                        if self._local_joined(f, target.id):
                            return None
                        return (f"thread stored in {target.id!r} is never "
                                "join()ed — join it before the function "
                                "returns")
            # threading.Thread(...).start() never retains a handle.
            if isinstance(node, ast.Attribute) and node.value is ctor \
                    and node.attr == "start":
                return ("thread started without retaining a handle — "
                        "keep it and join() it on teardown")
        return ("thread constructed without a retained handle — store "
                "it and join() it on teardown")

    def _local_joined(self, f: SourceFile, name: str) -> bool:
        for node in ast.walk(f.tree):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "join" \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id == name:
                return True
        return False

