"""FT005 — the bus is the only emission path.

The health plane (:mod:`repro.health`) observes the fabric by teeing
the *current sink* — which only works if every producer funnels its
events through the bus helpers (``obs.event`` / ``obs.publish`` /
the metric helpers).  A library module that grabs
``obs.current_sink()`` and calls ``.emit(...)`` on it writes *around*
any installed tee: the event reaches the JSONL file but silently
skips health aggregation, and nothing fails.

This rule forbids direct sink writes in ``repro.*`` outside the two
packages that own the plumbing (``repro.obs`` itself and
``repro.health``, whose tee forwards to the inner sink by design):

* chained ``obs.current_sink().emit(...)`` calls;
* ``.emit(...)`` on any variable assigned from ``current_sink()``
  anywhere in the same file;
* ``obs.install_sink(...)`` — interposing on the bus is health-plane
  machinery, not a general library facility.

Tests and tools are exempt (they exercise sinks directly on purpose).
The sanctioned alternative for raw wire events is
:func:`repro.obs.publish`.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..astutil import ImportMap
from ..engine import Finding, Rule, SourceFile
from . import register

#: Resolved call targets that return the live sink.
_CURRENT_SINK_CALLS = {
    "repro.obs.current_sink",
    "repro.obs.trace.current_sink",
    "obs.current_sink",
    "trace.current_sink",
}

#: Resolved call targets that swap the live sink.
_INSTALL_SINK_CALLS = {
    "repro.obs.install_sink",
    "repro.obs.trace.install_sink",
    "obs.install_sink",
    "trace.install_sink",
}

#: Packages allowed to touch the sink directly: the bus implementation
#: and the health tee it exists to support.
_EXEMPT_PACKAGES = ("repro.obs", "repro.health")


def _exempt(module: str) -> bool:
    if not module.startswith("repro."):
        return True  # tests/tools poke sinks on purpose
    return any(
        module == pkg or module.startswith(pkg + ".")
        for pkg in _EXEMPT_PACKAGES
    )


def _is_current_sink_call(node: ast.AST, imports: ImportMap) -> bool:
    return (isinstance(node, ast.Call)
            and imports.resolve_call(node.func) in _CURRENT_SINK_CALLS)


@register
class BusEmissionRule(Rule):
    code = "FT005"
    name = "bus-emission"
    summary = ("direct sink writes (current_sink().emit / install_sink) "
               "are reserved to repro.obs and repro.health — emit "
               "through obs.publish/obs.event instead")

    def check_file(self, f: SourceFile) -> Iterator[Finding]:
        if _exempt(f.module):
            return
        imports = ImportMap.of(f.tree)
        # Pass 1: names bound to the live sink anywhere in the file.
        sink_names: Set[str] = set()
        for node in ast.walk(f.tree):
            if isinstance(node, ast.Assign) and \
                    _is_current_sink_call(node.value, imports):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        sink_names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None \
                    and _is_current_sink_call(node.value, imports):
                if isinstance(node.target, ast.Name):
                    sink_names.add(node.target.id)
        # Pass 2: flag the writes.
        for node in ast.walk(f.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "emit":
                receiver = func.value
                direct = _is_current_sink_call(receiver, imports)
                via_name = (isinstance(receiver, ast.Name)
                            and receiver.id in sink_names)
                if direct or via_name:
                    yield f.finding(
                        node, self.code,
                        "direct sink .emit() bypasses any installed bus "
                        "tee (the health plane would never see this "
                        "event) — emit through obs.publish(kind, name, "
                        "**fields) or obs.event instead",
                    )
            elif imports.resolve_call(func) in _INSTALL_SINK_CALLS:
                yield f.finding(
                    node, self.code,
                    "obs.install_sink() interposes on the telemetry bus "
                    "— that is repro.health machinery; library code "
                    "must not swap sinks",
                )
