"""FT002 — the telemetry event contract, statically enforced.

The wire contract lives in :mod:`repro.obs.contract` (one registry
shared by the runtime JSONL validator, this rule, and the docs).  The
rule proves both directions at lint time:

* every *literal* event name passed to ``obs.event(...)`` (or
  ``trace.event`` / ``from repro.obs import event``) is registered,
  and carries that name's required attributes as keyword arguments;
* every registered name still has at least one emit site somewhere in
  ``repro.*`` — a registration whose last emit site was deleted is
  dead contract surface and is flagged on its line in ``contract.py``.

The coverage direction only fires when ``repro.obs.contract`` itself
is part of the linted file set (i.e. a full ``src`` lint), so linting
a single file never reports the whole registry as unused.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, Set

from ..astutil import ImportMap
from ..engine import Finding, Project, Rule, SourceFile
from . import register


def _load_contract():
    try:
        from repro.obs import contract
    except ImportError:  # standalone checkout: put src/ on the path
        sys.path.insert(
            0, str(Path(__file__).resolve().parents[3] / "src"))
        from repro.obs import contract
    return contract


#: Call targets that emit a one-off event, after loose resolution
#: (``obs.event`` covers both ``from repro import obs`` and a bare
#: attribute chain the resolver could not trace to an import).
_EVENT_CALLS = {
    "repro.obs.event",
    "repro.obs.trace.event",
    "obs.event",
    "trace.event",
}

_CONTRACT_MODULE = "repro.obs.contract"


@register
class TelemetryContractRule(Rule):
    code = "FT002"
    name = "telemetry-contract"
    summary = ("literal obs.event() names must be registered in "
               "repro.obs.contract with their required attributes, and "
               "every registered name must keep an emit site")

    def __init__(self) -> None:
        self._contract = _load_contract()
        self._emitted: Set[str] = set()

    def check_file(self, f: SourceFile) -> Iterator[Finding]:
        imports = ImportMap.of(f.tree)
        if f.module == _CONTRACT_MODULE:
            return
        for node in ast.walk(f.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve_call(node.func)
            if resolved not in _EVENT_CALLS:
                continue
            yield from self._check_emit(f, node)

    def _check_emit(self, f: SourceFile,
                    node: ast.Call) -> Iterator[Finding]:
        # Library code may only emit registered, literal names.  Tests
        # and tools may use scratch names to exercise the plumbing —
        # but when they emit a *registered* name, its required fields
        # still apply.
        in_library = f.module.startswith("repro.")
        if not node.args:
            return
        name_node = node.args[0]
        if not (isinstance(name_node, ast.Constant)
                and isinstance(name_node.value, str)):
            if in_library:
                yield f.finding(
                    node, self.code,
                    "dynamic event name — pass a literal string so the "
                    "contract can be checked statically (or register a "
                    "name per variant)",
                )
            return
        name = name_node.value
        known = self._contract.KNOWN_EVENT_NAMES
        if name not in known:
            if in_library:
                yield f.finding(
                    node, self.code,
                    f"event name {name!r} is not registered in "
                    f"repro.obs.contract.EVENT_FIELDS — register it "
                    f"(and document it in docs/observability.md) "
                    f"before emitting",
                )
            return
        if in_library:
            self._emitted.add(name)
        if any(kw.arg is None for kw in node.keywords):
            return  # **attrs forwarding: field presence is dynamic
        provided = {kw.arg for kw in node.keywords if kw.arg is not None}
        missing = sorted(
            self._contract.EVENT_FIELDS[name] - provided - {"value"})
        if missing:
            yield f.finding(
                node, self.code,
                f"event {name!r} emitted without required "
                f"attribute(s) {', '.join(missing)} (see "
                f"repro.obs.contract.EVENT_FIELDS)",
            )

    def finalize(self, project: Project) -> Iterator[Finding]:
        contract_file = project.by_module(_CONTRACT_MODULE)
        if contract_file is None:
            return
        for name in sorted(self._contract.KNOWN_EVENT_NAMES):
            if name in self._emitted:
                continue
            line = 1
            needle = f'"{name}"'
            for lineno, text in enumerate(contract_file.lines, start=1):
                if needle in text:
                    line = lineno
                    break
            yield Finding(
                path=contract_file.display,
                line=line,
                col=1,
                code=self.code,
                message=(
                    f"registered event name {name!r} has no emit site "
                    "left in repro.* — delete the registration (and its "
                    "docs entry) or restore the obs.event call"
                ),
            )
