"""FT004 — import layering.

The library's package DAG is declared here, explicitly, and every
*module-scope* ``import repro.X`` is checked against it.  Function-
level (lazy) imports are the sanctioned escape hatch for genuine
cycles — ``repro.core.reconfigure`` pulling ``ChaosClock`` inside a
function is fine; ``repro.topology`` importing ``repro.monitor`` at
module scope is not.

A second sub-check guards :mod:`repro.obs` internals: outside the obs
package itself, only the public facade (``repro.obs``) and its
published submodules (``sinks``, ``stats``, ``contract``, ``perf``,
``bench``, ``sampler``, ``progress``, ``hotspots``) may be imported —
``repro.obs.trace`` / ``registry`` /
``render`` are
implementation details.  Both checks apply to ``repro.*`` modules
only; tests and tools may poke wherever they need.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional

from ..engine import Finding, Rule, SourceFile
from . import register

_FOUNDATION = frozenset({"repro.errors", "repro.obs"})

#: The declared package DAG: every module-scope import from package K
#: must target K itself or a member of ALLOWED[K].  Additions must
#: keep this acyclic — extend deliberately, in review, not ad hoc.
ALLOWED: Dict[str, FrozenSet[str]] = {
    "repro.errors": frozenset(),
    "repro.obs": frozenset({"repro.errors"}),
    "repro.topology": _FOUNDATION,
    "repro.mcf": _FOUNDATION | {"repro.topology"},
    "repro.routing": _FOUNDATION | {"repro.topology", "repro.mcf"},
    "repro.analysis": _FOUNDATION | {"repro.topology", "repro.mcf"},
    "repro.flowsim": _FOUNDATION | {"repro.topology", "repro.routing"},
    "repro.monitor": _FOUNDATION | {"repro.topology", "repro.routing"},
    "repro.traffic": _FOUNDATION | {
        "repro.topology", "repro.mcf", "repro.flowsim"},
    "repro.core": _FOUNDATION | {
        "repro.topology", "repro.mcf", "repro.routing"},
    "repro.chaos": _FOUNDATION | {"repro.topology", "repro.core"},
    # The health plane consumes only the wire contract: it reads bus
    # events, never simulator/topology state, so it sits on the
    # foundation alone and any producer stays importable without it.
    "repro.health": _FOUNDATION,
    # The remediation plane closes the loop: it consumes health-plane
    # alerts and drives the conversion/chaos/flowsim machinery, so it
    # sits above all of them (and below experiments/cli).
    "repro.selfheal": _FOUNDATION | {
        "repro.topology", "repro.routing", "repro.flowsim", "repro.core",
        "repro.chaos", "repro.health"},
    "repro.experiments": _FOUNDATION | {
        "repro.topology", "repro.mcf", "repro.routing", "repro.flowsim",
        "repro.traffic", "repro.monitor", "repro.core", "repro.chaos",
        "repro.analysis", "repro.health", "repro.selfheal"},
    "repro.cli": _FOUNDATION | {
        "repro.topology", "repro.mcf", "repro.routing", "repro.flowsim",
        "repro.traffic", "repro.monitor", "repro.core", "repro.chaos",
        "repro.analysis", "repro.experiments", "repro.health",
        "repro.selfheal"},
}

#: repro.obs submodules that are public API; everything else is
#: internal to the obs package.
PUBLIC_OBS_SUBMODULES = frozenset({
    "sinks", "stats", "contract", "perf", "bench", "sampler", "progress",
    "hotspots", "diffprof", "trend"})


def _package_of(module: str) -> str:
    """``repro.core.scaling`` -> ``repro.core``; ``repro`` -> ``repro``."""
    parts = module.split(".")
    return ".".join(parts[:2])


def _resolve_relative(f: SourceFile, node: ast.ImportFrom) -> Optional[str]:
    """Absolute module targeted by a (possibly relative) ImportFrom."""
    if node.level == 0:
        return node.module
    parts = f.module.split(".")
    if not f.path.name == "__init__.py":
        parts = parts[:-1]
    if node.level - 1 > len(parts):
        return None
    base = parts[: len(parts) - (node.level - 1)]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


def _import_targets(f: SourceFile, node: ast.AST) -> List[str]:
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    if isinstance(node, ast.ImportFrom):
        target = _resolve_relative(f, node)
        return [target] if target else []
    return []


@register
class LayeringRule(Rule):
    code = "FT004"
    name = "layering"
    summary = ("module-scope imports must follow the declared package "
               "DAG; repro.obs internals stay inside repro.obs")

    def check_file(self, f: SourceFile) -> Iterator[Finding]:
        if not f.module.startswith("repro"):
            return
        package = _package_of(f.module)
        if package != "repro":  # the root facade may re-export anything
            yield from self._check_dag(f, package)
        yield from self._check_obs_internals(f, package)

    def _check_dag(self, f: SourceFile, package: str) -> Iterator[Finding]:
        allowed = ALLOWED.get(package)
        for node in f.tree.body:
            for target in _import_targets(f, node):
                if not target.startswith("repro"):
                    continue
                target_package = _package_of(target)
                if target_package in (package, "repro"):
                    continue
                if allowed is None:
                    yield f.finding(
                        node, self.code,
                        f"package {package!r} is not in the declared "
                        "layering DAG — add it (with its allowed "
                        "dependencies) to tools/flatlint/rules/"
                        "layering.py",
                    )
                    return
                if target_package not in allowed:
                    yield f.finding(
                        node, self.code,
                        f"{package} may not import {target_package} at "
                        f"module scope (allowed: "
                        f"{', '.join(sorted(allowed)) or 'nothing'}); "
                        "use a function-level import only for a "
                        "documented cycle-break",
                    )

    def _check_obs_internals(self, f: SourceFile,
                             package: str) -> Iterator[Finding]:
        if package == "repro.obs" or f.module == "repro":
            return
        for node in ast.walk(f.tree):
            for target in _import_targets(f, node):
                if target is None or not target.startswith("repro.obs."):
                    submodules: List[str] = []
                    if (isinstance(node, ast.ImportFrom)
                            and target == "repro.obs"):
                        submodules = [
                            alias.name for alias in node.names
                            if alias.name in ("trace", "registry", "render")
                        ]
                    if not submodules:
                        continue
                    internal = submodules[0]
                else:
                    internal = target.split(".")[2]
                    if internal in PUBLIC_OBS_SUBMODULES:
                        continue
                yield f.finding(
                    node, self.code,
                    f"repro.obs.{internal} is internal to the obs "
                    "package — import the repro.obs facade (or one of "
                    f"{', '.join(sorted(PUBLIC_OBS_SUBMODULES))}) "
                    "instead",
                )
