"""FT003 — correctness hygiene.

Three bug classes this codebase has actually hit (or nearly hit):

* **mutable default arguments** — the classic shared-state trap;
* **broad/bare ``except`` that swallows** — a handler catching
  ``Exception`` (or everything) whose body neither re-raises nor
  records the failure (logging, ``warnings``, ``print`` or a
  telemetry call) hides real faults; narrow the type or emit a
  registered telemetry event;
* **float equality on capacity-like quantities** — ``==`` on
  capacities/utilizations/rates is numerically fragile; compare with
  a tolerance (``math.isclose``) instead.  Comparisons against a
  literal ``0``/``0.0`` sentinel are allowed — exact zero is the
  conventional "untouched default" check.  This sub-check applies to
  library code (``repro.*``) only: tests routinely assert exact
  IEEE-representable fractions on purpose.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..astutil import dotted_name
from ..engine import Finding, Rule, SourceFile
from . import register

_BROAD_TYPES = {"Exception", "BaseException"}

#: Terminal attribute names that count as "the failure was recorded".
_HANDLING_CALLS = {
    "event", "incr", "observe", "set_gauge", "emit",
    "print", "warn", "warning", "error", "exception", "critical",
    "info", "debug", "log",
}

#: Call bases that are logging/diagnostic facilities by construction.
_HANDLING_BASES = {"logging", "logger", "log", "warnings", "obs", "trace"}

#: Identifier tokens that mark a float-valued network quantity.
_FLOATY_TOKENS = {
    "capacity", "utilization", "util", "throughput", "rate", "rates",
    "load", "fraction", "bandwidth",
}

_MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "deque"}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        if dotted is not None and dotted.split(".")[-1] in _MUTABLE_CALLS:
            return True
    return False


def _broad_handler_type(handler: ast.ExceptHandler) -> Optional[str]:
    """'bare', 'Exception', 'BaseException', or None when narrow."""
    if handler.type is None:
        return "bare"
    nodes = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    for node in nodes:
        dotted = dotted_name(node)
        if dotted is not None and dotted.split(".")[-1] in _BROAD_TYPES:
            return dotted.split(".")[-1]
    return None


def _records_failure(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if parts[-1] in _HANDLING_CALLS or parts[0] in _HANDLING_BASES:
                return True
    return False


def _floaty_terminal(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        terminal = node.id
    elif isinstance(node, ast.Attribute):
        terminal = node.attr
    else:
        return None
    tokens = terminal.lower().split("_")
    for token in tokens:
        if token in _FLOATY_TOKENS or token.rstrip("s") in _FLOATY_TOKENS:
            return terminal
    return None


def _is_exempt_comparand(node: ast.AST) -> bool:
    """Literal zero sentinels, strings, bools and None don't count."""
    if not isinstance(node, ast.Constant):
        return False
    value = node.value
    if value is None or isinstance(value, (str, bool)):
        return True
    return isinstance(value, (int, float)) and value == 0


@register
class HygieneRule(Rule):
    code = "FT003"
    name = "hygiene"
    summary = ("mutable default arguments, broad excepts that swallow "
               "silently, float == on capacity-like quantities")

    def check_file(self, f: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(f.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                yield from self._check_defaults(f, node)
            elif isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(f, node)
            elif isinstance(node, ast.Compare) and \
                    f.module.startswith("repro."):
                yield from self._check_float_eq(f, node)

    def _check_defaults(self, f: SourceFile, node: ast.AST
                        ) -> Iterator[Finding]:
        args = node.args
        defaults = list(args.defaults)
        defaults.extend(d for d in args.kw_defaults if d is not None)
        for default in defaults:
            if _is_mutable_default(default):
                yield f.finding(
                    default, self.code,
                    "mutable default argument is shared across calls — "
                    "default to None and create the container inside "
                    "the function",
                )

    def _check_handler(self, f: SourceFile,
                       handler: ast.ExceptHandler) -> Iterator[Finding]:
        broad = _broad_handler_type(handler)
        if broad is None or _records_failure(handler):
            return
        caught = ("bare 'except:'" if broad == "bare"
                  else f"'except {broad}:'")
        yield f.finding(
            handler, self.code,
            f"{caught} swallows the failure without re-raising or "
            "recording it — narrow the exception type, or emit a "
            "registered telemetry event / log before continuing",
        )

    def _check_float_eq(self, f: SourceFile,
                        node: ast.Compare) -> Iterator[Finding]:
        operands = [node.left] + list(node.comparators)
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            for side, other in ((left, right), (right, left)):
                terminal = _floaty_terminal(side)
                if terminal is None or _is_exempt_comparand(other):
                    continue
                yield f.finding(
                    node, self.code,
                    f"float equality on {terminal!r} — capacities and "
                    "utilizations accumulate rounding error; compare "
                    "with math.isclose(...) (exact 0 sentinels are "
                    "exempt)",
                )
                break
