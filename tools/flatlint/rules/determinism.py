"""FT001 — determinism.

The experiments (and the paper's conversion-cost comparisons) depend
on runs being bit-for-bit reproducible per seed: ``make chaos-smoke``
literally ``cmp``'s two sweep outputs.  Three things silently break
that property and are flagged here:

* **module-level RNG** — ``random.random()`` / ``np.random.rand()``
  draw from hidden global state instead of a seeded
  ``random.Random`` / ``numpy.random.default_rng`` instance;
* **wall clock in simulation code** — ``time.time()`` /
  ``datetime.now()`` inside ``repro.chaos`` / ``repro.flowsim`` /
  ``repro.experiments``, where all time must come from the simulated
  clock (telemetry timestamps in ``repro.obs`` are exempt by scope);
* **ordered consumption of unordered sets** — iterating a bare
  ``set(...)`` (or set union/intersection) into a list, loop, join or
  RNG choice leaks ``PYTHONHASHSEED``-dependent ordering into output.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from ..astutil import ImportMap
from ..engine import Finding, Rule, SourceFile
from . import register

#: Constructors that *are* the sanctioned way to get randomness.
_SEEDED_RANDOM = {"Random", "SystemRandom"}
_SEEDED_NUMPY = {"default_rng", "Generator", "RandomState", "SeedSequence"}

#: Wall-clock call targets (fully resolved through the import map).
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Packages whose code runs inside the simulated timeline.
_WALL_CLOCK_SCOPES = ("repro.chaos", "repro.flowsim", "repro.experiments")

#: ``x.choice(set(...))``-style consumers whose result order matters.
_ORDER_SENSITIVE_METHODS = {"choice", "choices", "sample", "shuffle", "join"}


def _is_setish(node: ast.AST) -> bool:
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return _is_setish(node.left) or _is_setish(node.right)
    return False


def _in_wall_clock_scope(module: str) -> bool:
    return any(
        module == scope or module.startswith(scope + ".")
        for scope in _WALL_CLOCK_SCOPES
    )


@register
class DeterminismRule(Rule):
    code = "FT001"
    name = "determinism"
    summary = ("unseeded global RNG, wall-clock reads in simulation "
               "code, and order-sensitive iteration over bare sets")

    def check_file(self, f: SourceFile) -> Iterator[Finding]:
        imports = ImportMap.of(f.tree)
        wall_clock_scope = _in_wall_clock_scope(f.module)
        for node in ast.walk(f.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(f, node, imports,
                                            wall_clock_scope)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_set_order(f, node.iter, "for-loop")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp)):
                for gen in node.generators:
                    yield from self._check_set_order(
                        f, gen.iter, "comprehension")

    def _check_call(self, f: SourceFile, node: ast.Call,
                    imports: ImportMap,
                    wall_clock_scope: bool) -> Iterator[Finding]:
        resolved = imports.resolve_imported(node.func)
        if resolved is not None:
            yield from self._check_global_rng(f, node, resolved)
            if wall_clock_scope and resolved in _WALL_CLOCK:
                yield f.finding(
                    node, self.code,
                    f"wall-clock {resolved}() inside {f.module} — "
                    "simulation code must take time from the simulated "
                    "clock (or an injected time source), never the host",
                )
        yield from self._check_set_consumers(f, node)

    def _check_global_rng(self, f: SourceFile, node: ast.Call,
                          resolved: str) -> Iterator[Finding]:
        parts = resolved.split(".")
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] not in _SEEDED_RANDOM:
                yield f.finding(
                    node, self.code,
                    f"module-level random.{parts[1]}() draws from the "
                    "global RNG — route randomness through a seeded "
                    "random.Random instance",
                )
        elif parts[0] == "numpy" and len(parts) >= 3 and parts[1] == "random":
            if parts[-1] not in _SEEDED_NUMPY:
                yield f.finding(
                    node, self.code,
                    f"global numpy RNG call {resolved}() — use a "
                    "numpy.random.default_rng(seed) generator instead",
                )

    def _check_set_order(self, f: SourceFile, iter_node: ast.AST,
                         where: str) -> Iterator[Finding]:
        if _is_setish(iter_node):
            yield f.finding(
                iter_node, self.code,
                f"{where} iterates an unordered set expression — "
                "iteration order depends on PYTHONHASHSEED; wrap it in "
                "sorted(...) before it can feed output or RNG choice",
            )

    def _check_set_consumers(self, f: SourceFile,
                             node: ast.Call) -> Iterator[Finding]:
        func = node.func
        args: Iterable[ast.AST] = node.args
        if isinstance(func, ast.Name) and func.id in ("list", "tuple"):
            if any(_is_setish(arg) for arg in args):
                yield f.finding(
                    node, self.code,
                    f"{func.id}() materializes an unordered set in "
                    "arbitrary order — use sorted(...) to pin the order",
                )
        elif isinstance(func, ast.Attribute) and \
                func.attr in _ORDER_SENSITIVE_METHODS:
            if any(_is_setish(arg) for arg in args):
                yield f.finding(
                    node, self.code,
                    f".{func.attr}(...) consumes an unordered set — "
                    "its result depends on PYTHONHASHSEED; pass "
                    "sorted(...) instead",
                )
