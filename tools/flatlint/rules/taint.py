"""FT007 — determinism taint from nondeterminism sources to replay sinks.

The repo's replay contracts (PR 5/8) promise byte-identical artifacts:
the remediation ledger, health reports, and the ``BENCH_*`` /
``HOTSPOTS_*`` JSON baselines must come out the same when a trace is
replayed.  Trace time (the ``t`` threaded through the event stream) is
the sanctioned clock; wall clocks, unseeded RNGs and id()-keyed
iteration are not.  A per-file rule can catch ``time.time()`` inside
``ledger.py`` — but not three frames above it.

The analysis works *backwards* from the sinks:

1. **Sinks** — every function in the replay-critical modules
   (``repro.selfheal.ledger``, ``repro.health.report``,
   ``repro.obs.bench``, ``repro.obs.hotspots``), every method of a
   class named ``RemediationLedger``/``HealthReport``, and telemetry
   ``emit`` methods under ``repro.obs``.  For each sink *method* name
   the pseudo-node ``<unknown>.<name>`` is seeded too, so a sink
   reached through unresolvable dynamic dispatch still counts —
   unknown callees widen taint, they never drop it.
2. **Feeders** — reverse BFS over direct + widened + unknown edges:
   every function that can transitively call a sink.  The walk is cut
   at the trace-clock module (``repro.obs.trace``): routing time
   through ``obs.event(..., t=...)`` is exactly the sanctioned path,
   so calling the bus must not mark a function replay-critical.
3. **Sources** — inside each feeder, calls that resolve to wall
   clocks (``time.time``/``monotonic``/``perf_counter`` and datetime
   friends), the unseeded module-level ``random`` API, entropy APIs
   (``os.urandom``, ``uuid.uuid4``, ``secrets``), bare ``id()``, and
   iteration over ``set`` expressions (unordered across runs).

Each finding is reported **at the source call site** — that is the
line to fix or to suppress with a justification — and the message
carries the source→sink call path so the three-frames-away case is
diagnosable from the report alone.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..callgraph import UNKNOWN_PREFIX
from ..engine import Finding, Project, Rule
from . import register

#: Modules whose artifacts must replay byte-identically.
_SINK_MODULES = frozenset({
    "repro.selfheal.ledger",
    "repro.health.report",
    "repro.obs.bench",
    "repro.obs.hotspots",
    "repro.obs.diffprof",
    "repro.obs.trend",
})

#: Replay-critical classes recognised anywhere (fixtures included).
_SINK_CLASSES = frozenset({"RemediationLedger", "HealthReport"})

#: Sanctioned nondeterminism: the trace clock owns timestamping, so
#: the reverse walk stops here and its internals are never scanned.
_EXEMPT_MODULES = frozenset({"repro.obs.trace"})

_WALL_CLOCKS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

_UNSEEDED_RANDOM = frozenset({
    "random.random", "random.randint", "random.randrange",
    "random.choice", "random.choices", "random.shuffle",
    "random.sample", "random.uniform", "random.gauss",
    "random.expovariate", "random.getrandbits", "random.betavariate",
})

_ENTROPY = frozenset({
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbits", "secrets.randbelow", "secrets.choice",
})


def _in_repro(module: str) -> bool:
    return module == "repro" or module.startswith("repro.")


def _source_label(callee: str) -> Optional[str]:
    """Human label when *callee* is a nondeterminism source, else None."""
    if callee in _WALL_CLOCKS:
        return f"wall clock {callee}()"
    if callee in _UNSEEDED_RANDOM:
        return f"unseeded {callee}()"
    if callee in _ENTROPY:
        return f"entropy source {callee}()"
    if callee == f"{UNKNOWN_PREFIX}.id":
        return "id() (allocation-order dependent)"
    return None


@register
class DeterminismTaintRule(Rule):
    code = "FT007"
    name = "determinism-taint"
    summary = ("wall clocks, unseeded random, entropy, id() and set "
               "iteration must not reach replay-critical sinks (ledger, "
               "health report, telemetry emit, BENCH_*/HOTSPOTS_* "
               "writers, diff/trend reports); use the trace clock or "
               "sort/seed first")

    def finalize(self, project: Project) -> Iterator[Finding]:
        if not any(_in_repro(f.module) for f in project.files):
            return
        symtab = project.symbols()
        graph = project.callgraph()

        sinks = self._sink_functions(symtab)
        if not sinks:
            return
        toward_sink = self._feeders(graph, symtab, sinks)

        seen: Set[Tuple[str, int, str]] = set()
        for qual in sorted(toward_sink):
            fn = symtab.functions.get(qual)
            if fn is None or not _in_repro(fn.module) \
                    or fn.module in _EXEMPT_MODULES:
                continue
            route = self._route(symtab, toward_sink, qual)
            for line, col, label in self._sources_in(graph, fn):
                key = (fn.path, line, label)
                if key in seen:
                    continue
                seen.add(key)
                yield Finding(
                    path=fn.path, line=line, col=col, code=self.code,
                    message=(
                        f"nondeterministic {label} reaches replay-"
                        f"critical sink via {route} — route timestamps "
                        "through the trace clock, seed/sort the data, "
                        "or suppress with a justification"),
                )

    # ------------------------------------------------------------------
    # sink discovery
    # ------------------------------------------------------------------
    def _sink_functions(self, symtab: object) -> Dict[str, str]:
        """Sink qualname -> short label (includes pseudo-nodes)."""
        sinks: Dict[str, str] = {}
        for qual, fn in symtab.functions.items():
            if fn.module in _SINK_MODULES and not fn.is_module_body:
                sinks[qual] = qual
            elif fn.cls is not None:
                cls_name = fn.cls.rsplit(".", 1)[-1]
                if cls_name in _SINK_CLASSES:
                    sinks[qual] = qual
                elif fn.name == "emit" \
                        and fn.module.startswith("repro.obs"):
                    sinks[qual] = qual
        # Dynamic dispatch must widen into sinks, never drop them: for
        # every sink *method* name, the matching unknown pseudo-node is
        # a sink too.
        for qual in list(sinks):
            fn = symtab.functions[qual]
            if fn.cls is not None:
                pseudo = f"{UNKNOWN_PREFIX}.{fn.name}"
                sinks.setdefault(pseudo, qual)
        return sinks

    # ------------------------------------------------------------------
    # reverse reachability
    # ------------------------------------------------------------------
    def _feeders(self, graph: object, symtab: object,
                 sinks: Dict[str, str]) -> Dict[str, Optional[str]]:
        """caller -> next node toward a sink (sinks map to None)."""
        toward: Dict[str, Optional[str]] = {q: None for q in sinks}
        queue: List[str] = sorted(sinks)
        while queue:
            node = queue.pop(0)
            fn = symtab.functions.get(node)
            if fn is not None and fn.module in _EXEMPT_MODULES:
                continue        # the trace clock absorbs, not forwards
            for edge in graph.into.get(node, ()):
                if edge.kind not in ("direct", "widened", "unknown"):
                    continue
                if edge.caller in toward:
                    continue
                toward[edge.caller] = node
                queue.append(edge.caller)
        return toward

    def _route(self, symtab: object,
               toward_sink: Dict[str, Optional[str]], qual: str) -> str:
        chain = [qual]
        cursor = toward_sink.get(qual)
        while cursor is not None and cursor not in chain:
            chain.append(cursor)
            cursor = toward_sink.get(cursor)
        return " -> ".join(chain)

    # ------------------------------------------------------------------
    # source scanning
    # ------------------------------------------------------------------
    def _sources_in(self, graph: object, fn: object,
                    ) -> Iterator[Tuple[int, int, str]]:
        for edge in graph.out.get(fn.qualname, ()):
            label = _source_label(edge.callee)
            if label is not None:
                yield edge.line, 1, label
        yield from self._set_iterations(fn)

    def _set_iterations(self, fn: object) -> Iterator[Tuple[int, int, str]]:
        for node in self._own_statements(fn):
            for sub in ast.walk(node):
                iters: List[ast.AST] = []
                if isinstance(sub, (ast.For, ast.AsyncFor)):
                    iters.append(sub.iter)
                elif isinstance(sub, (ast.ListComp, ast.SetComp,
                                      ast.DictComp, ast.GeneratorExp)):
                    iters.extend(gen.iter for gen in sub.generators)
                for it in iters:
                    if self._is_set_expr(it):
                        yield (getattr(it, "lineno", fn.lineno),
                               getattr(it, "col_offset", 0) + 1,
                               "iteration over an unordered set")

    def _own_statements(self, fn: object) -> List[ast.AST]:
        body = list(getattr(fn.node, "body", ()))
        if fn.is_module_body:
            return [n for n in body
                    if not isinstance(n, (ast.FunctionDef,
                                          ast.AsyncFunctionDef,
                                          ast.ClassDef))]
        return body

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in ("set", "frozenset"):
            return True
        return False
