"""CLI: ``python -m tools.flatlint [paths ...]``.

Exit status:

===  ==========================================================
0    clean (no findings)
1    findings were reported
2    usage error (unknown rule code, unreadable path, bad args)
3    engine error (a target failed to parse — FT000 — or the
     analyzer itself crashed); CI treats this as infrastructure
     failure, not as lint findings
===  ==========================================================

Subcommand ``graph`` builds the whole-program call graph over the
given paths (default ``src tools``) and prints it as JSON (schema
``flatlint.callgraph/1``) — ``--out FILE`` writes it to a file
instead.

``--changed-only`` lints only the ``.py`` files reported changed by
git (``git diff --name-only HEAD`` plus untracked files) while still
parsing ``src`` and ``tools`` as *context*, so the interprocedural
rules (FT006/FT007) reason over the full call graph even on a
one-file diff.  This is the ``make lint-fast`` path.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import traceback
from pathlib import Path
from typing import List, Optional

from . import PARSE_ERROR_CODE, __version__, all_rules, render_json, \
    render_text, run
from .engine import collect_files

#: Paths always parsed as call-graph context under --changed-only.
CONTEXT_PATHS = ("src", "tools")

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2
EXIT_ENGINE = 3


def _changed_python_files(paths: List[str]) -> Optional[List[str]]:
    """``.py`` files git reports changed or untracked, scoped to *paths*.

    Returns None when git is unavailable (caller falls back to a full
    lint rather than silently linting nothing).
    """
    names: List[str] = []
    for cmd in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, check=True)
        except (OSError, subprocess.CalledProcessError):
            return None
        names.extend(line.strip() for line in proc.stdout.splitlines()
                     if line.strip())
    scopes = [Path(p).resolve() for p in paths]
    changed: List[str] = []
    for name in dict.fromkeys(names):  # de-dup, keep order
        if not name.endswith(".py"):
            continue
        path = Path(name)
        if not path.exists():  # deleted in the diff
            continue
        resolved = path.resolve()
        if any(resolved == scope or scope in resolved.parents
               for scope in scopes):
            changed.append(name)
    return changed


def _graph_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="flatlint graph",
        description="Export the whole-program call graph as JSON "
                    "(schema flatlint.callgraph/1).")
    parser.add_argument(
        "paths", nargs="*", default=["src", "tools"],
        help="files or directories to analyze (default: src tools)")
    parser.add_argument(
        "--out", metavar="FILE",
        help="write the graph JSON here instead of stdout")
    args = parser.parse_args(argv)
    try:
        files = collect_files(list(args.paths))
    except FileNotFoundError as exc:
        print(f"flatlint: {exc}", file=sys.stderr)
        return EXIT_USAGE
    try:
        from .engine import Project, SourceFile
        loaded = []
        for path in files:
            try:
                loaded.append(SourceFile.load(path))
            except SyntaxError:
                print(f"flatlint: skipping unparseable {path}",
                      file=sys.stderr)
        graph = Project(files=loaded).callgraph()
        text = graph.to_json()
    except Exception:  # noqa: BLE001 - CLI boundary: report, exit 3
        traceback.print_exc()
        print("flatlint: internal error while building the call graph",
              file=sys.stderr)
        return EXIT_ENGINE
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"flatlint: wrote call graph "
              f"({len(graph.edges)} edges) to {args.out}")
    else:
        print(text, end="")
    return EXIT_CLEAN


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "graph":
        return _graph_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="flatlint",
        description="Domain-aware static analysis for the Flat-tree repo "
                    "(rule catalog: docs/static-analysis.md; "
                    "'flatlint graph' exports the call graph).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)")
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (e.g. FT001,FT004)")
    parser.add_argument(
        "--changed-only", action="store_true",
        help="lint only files git reports changed; src/tools are still "
             "parsed as context so FT006/FT007 see the whole program")
    parser.add_argument(
        "--out", metavar="FILE",
        help="also write the JSON report here (CI artifact)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit")
    parser.add_argument(
        "--version", action="version", version=f"flatlint {__version__}")
    args = parser.parse_args(argv)

    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.code}  {rule.name:20s} {rule.summary}")
        return EXIT_CLEAN

    select = None
    if args.select:
        select = {code.strip().upper()
                  for code in args.select.split(",") if code.strip()}
        known = {rule.code for rule in rules}
        unknown = sorted(select - known)
        if unknown:
            print(
                f"flatlint: unknown rule code(s) {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})",
                file=sys.stderr,
            )
            return EXIT_USAGE

    paths = list(args.paths)
    context: Optional[List[str]] = None
    if args.changed_only:
        changed = _changed_python_files(paths)
        if changed is None:
            print("flatlint: git unavailable, falling back to a full lint",
                  file=sys.stderr)
        elif not changed:
            print("flatlint: no changed python files under "
                  + " ".join(paths) + "; nothing to lint")
            if args.out:
                Path(args.out).write_text(
                    render_json([], 0) + "\n", encoding="utf-8")
            return EXIT_CLEAN
        else:
            paths = changed
            context = [p for p in CONTEXT_PATHS if Path(p).exists()]

    try:
        findings, files_checked = run(paths, select, context_paths=context)
    except FileNotFoundError as exc:
        print(f"flatlint: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except Exception:  # noqa: BLE001 - CLI boundary: report, exit 3
        traceback.print_exc()
        print("flatlint: internal analyzer error", file=sys.stderr)
        return EXIT_ENGINE

    if args.out:
        Path(args.out).write_text(
            render_json(findings, files_checked) + "\n", encoding="utf-8")
    render = render_json if args.format == "json" else render_text
    print(render(findings, files_checked))
    if any(f.code == PARSE_ERROR_CODE for f in findings):
        return EXIT_ENGINE
    return EXIT_FINDINGS if findings else EXIT_CLEAN


if __name__ == "__main__":
    raise SystemExit(main())
