"""CLI: ``python -m tools.flatlint [paths ...]``.

Exit status 0 when clean, 1 when findings were reported, 2 on usage
errors (unknown rule code, unreadable path).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__, all_rules, render_json, render_text, run


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="flatlint",
        description="Domain-aware static analysis for the Flat-tree repo "
                    "(rule catalog: docs/static-analysis.md).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)")
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (e.g. FT001,FT004)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit")
    parser.add_argument(
        "--version", action="version", version=f"flatlint {__version__}")
    args = parser.parse_args(argv)

    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.code}  {rule.name:20s} {rule.summary}")
        return 0

    select = None
    if args.select:
        select = {code.strip().upper()
                  for code in args.select.split(",") if code.strip()}
        known = {rule.code for rule in rules}
        unknown = sorted(select - known)
        if unknown:
            print(
                f"flatlint: unknown rule code(s) {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})",
                file=sys.stderr,
            )
            return 2

    try:
        findings, files_checked = run(list(args.paths), select)
    except FileNotFoundError as exc:
        print(f"flatlint: {exc}", file=sys.stderr)
        return 2

    render = render_json if args.format == "json" else render_text
    print(render(findings, files_checked))
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
