"""Whole-program call graph over the flatlint symbol table.

Nodes are function qualnames from :class:`tools.flatlint.symbols.
SymbolTable` (plus pseudo-nodes); edges carry the resolution *kind* and
whether the call site sat lexically under a ``with <lock>:`` block —
the two facts the interprocedural rules consume.

Edge kinds, in decreasing confidence:

``direct``
    The callee resolved: a plain function call through imports, a
    ``self.method()`` lookup (including project base classes), an
    attribute call through an inferred receiver type
    (``self.engine.poll`` with ``engine: RemediationEngine``), or a
    constructor (edge to ``Class.__init__``).
``widened``
    Dynamic dispatch approximated by name: overrides of a resolved base
    method (``sink.emit`` through a ``Sink``-typed receiver reaches
    every project ``emit`` override), bound-method aliases
    (``self._forward = inner.emit``), and attribute calls on *untyped*
    receivers, which widen to every project **method** of that name.
``unknown``
    The unresolvable remainder of an untyped attribute call — an edge
    to the pseudo-node ``<unknown>.<name>``.  Analyses must treat these
    pessimistically (FT007 taints through them; see the tests).
``external``
    A call that resolved through imports to something outside the
    project (``time.time``, ``threading.Thread``).  Kept as edges so
    taint sources need no second AST walk.

Export the graph with ``python -m tools.flatlint graph`` (schema
``flatlint.callgraph/1``); :meth:`CallGraph.from_json` round-trips it.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .astutil import dotted_name
from .symbols import (BUILTIN_CONTAINERS, SYNC_PRIMITIVES, FunctionInfo,
                      SymbolTable, _self_param)

__all__ = ["Edge", "CallGraph", "UNKNOWN_PREFIX", "lockish_expr",
           "type_env"]

#: Pseudo-node namespace for unresolvable attribute calls.
UNKNOWN_PREFIX = "<unknown>"

#: Name widening fans out to at most this many same-name methods; a
#: bigger fan-out (``.get``-style names) degrades to the unknown node
#: rather than wiring the whole project together.
_MAX_WIDEN = 24

GRAPH_SCHEMA = "flatlint.callgraph/1"

#: Bare-name builtins whose calls carry no interprocedural information;
#: dropping them keeps the unknown-node set about actual dispatch.
#: ``id`` is deliberately *not* here — FT007 treats it as a
#: nondeterminism source and needs the ``<unknown>.id`` edge.
_PURE_BUILTINS = frozenset({
    "abs", "all", "any", "bool", "bytes", "callable", "dict", "divmod",
    "enumerate", "filter", "float", "format", "frozenset", "getattr",
    "hasattr", "int", "isinstance", "issubclass", "iter", "len", "list",
    "map", "max", "min", "next", "object", "print", "range", "repr",
    "reversed", "round", "set", "setattr", "slice", "sorted", "str",
    "sum", "super", "tuple", "type", "zip",
})


@dataclass(frozen=True)
class Edge:
    """One call site: caller -> callee."""

    caller: str
    callee: str
    line: int
    kind: str            # direct | widened | unknown | external
    under_lock: bool

    def as_dict(self) -> Dict[str, object]:
        return {
            "caller": self.caller,
            "callee": self.callee,
            "line": self.line,
            "kind": self.kind,
            "under_lock": self.under_lock,
        }


def lockish_expr(symtab: Optional[SymbolTable], module: str,
                 node: ast.AST) -> bool:
    """Does this with-item expression look like a lock acquisition?

    Name-based (the final attribute component contains ``lock``) plus
    type-based (the attribute was assigned ``threading.Lock()`` /
    ``RLock()`` somewhere in its class).
    """
    dotted = dotted_name(node)
    if dotted is not None and "lock" in dotted.rsplit(".", 1)[-1].lower():
        return True
    if symtab is None or not isinstance(node, ast.Attribute):
        return False
    for cls in symtab.classes.values():
        if cls.module != module:
            continue
        sync = cls.attr_sync.get(node.attr)
        if sync in ("threading.Lock", "threading.RLock"):
            return True
    return False


class CallGraph:
    """Directed call graph with forward/reverse adjacency."""

    def __init__(self, symtab: Optional[SymbolTable] = None,
                 edges: Optional[Sequence[Edge]] = None) -> None:
        self.symtab = symtab
        self.edges: List[Edge] = list(edges) if edges is not None else []
        if symtab is not None and edges is None:
            self._build(symtab)
        self.out: Dict[str, List[Edge]] = {}
        self.into: Dict[str, List[Edge]] = {}
        for edge in self.edges:
            self.out.setdefault(edge.caller, []).append(edge)
            self.into.setdefault(edge.callee, []).append(edge)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self, symtab: SymbolTable) -> None:
        for fn in symtab.functions.values():
            _FunctionWalker(symtab, fn, self.edges).walk()
        # Stable order so JSON exports and reports are deterministic.
        self.edges.sort(key=lambda e: (e.caller, e.line, e.callee, e.kind))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def reachable(self, roots: Iterable[str],
                  kinds: Tuple[str, ...] = ("direct", "widened"),
                  unlocked_only: bool = False,
                  ) -> Dict[str, Optional[str]]:
        """BFS over out-edges: node -> parent (roots map to None).

        With *unlocked_only*, call sites under ``with <lock>:`` are not
        traversed: the result is the set of functions some path reaches
        with **no lock held anywhere along it** — the set FT006 scans
        for unprotected mutations, since a lock at any frame above a
        call protects everything below it.
        """
        parents: Dict[str, Optional[str]] = {}
        queue: List[str] = []
        for root in roots:
            if root not in parents:
                parents[root] = None
                queue.append(root)
        while queue:
            node = queue.pop(0)
            for edge in self.out.get(node, ()):
                if edge.kind not in kinds:
                    continue
                if unlocked_only and edge.under_lock:
                    continue
                if edge.callee in parents:
                    continue
                parents[edge.callee] = node
                queue.append(edge.callee)
        return parents

    @staticmethod
    def path_to(parents: Dict[str, Optional[str]], node: str) -> List[str]:
        """Root-first call path to *node* from its BFS parents."""
        path = [node]
        seen = {node}
        cursor = parents.get(node)
        while cursor is not None and cursor not in seen:
            path.append(cursor)
            seen.add(cursor)
            cursor = parents.get(cursor)
        path.reverse()
        return path

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        functions: List[Dict[str, object]] = []
        if self.symtab is not None:
            for qual in sorted(self.symtab.functions):
                fn = self.symtab.functions[qual]
                functions.append({
                    "qualname": fn.qualname,
                    "module": fn.module,
                    "class": fn.cls,
                    "path": fn.path,
                    "line": fn.lineno,
                })
        return {
            "schema": GRAPH_SCHEMA,
            "functions": functions,
            "edges": [edge.as_dict() for edge in self.edges],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, payload: str) -> "CallGraph":
        data = json.loads(payload)
        if data.get("schema") != GRAPH_SCHEMA:
            raise ValueError(
                f"unsupported call-graph schema {data.get('schema')!r}")
        edges = [
            Edge(caller=str(e["caller"]), callee=str(e["callee"]),
                 line=int(e["line"]), kind=str(e["kind"]),
                 under_lock=bool(e["under_lock"]))
            for e in data.get("edges", ())
        ]
        return cls(symtab=None, edges=edges)


def type_env(symtab: SymbolTable, fn: FunctionInfo,
             ) -> Tuple[Optional[str], Dict[str, Set[str]]]:
    """(self-parameter name, local-variable type map) for one function.

    The same inference the edge builder uses, exposed so analyses
    (FT006 mutation scanning) type receivers consistently with the
    graph they traverse.
    """
    walker = _FunctionWalker(symtab, fn, [])
    return walker.self_name, walker.local_types


class _FunctionWalker:
    """Walks one function body, emitting edges with lock context.

    Nested function/lambda bodies are attributed to the enclosing
    function (they have no graph node of their own); nested class
    definitions are skipped (their methods are separate nodes).
    """

    def __init__(self, symtab: SymbolTable, fn: FunctionInfo,
                 edges: List[Edge]) -> None:
        self.symtab = symtab
        self.fn = fn
        self.edges = edges
        self.self_name = (_self_param(fn.node)
                          if fn.cls is not None else None)
        self.builtin_locals: Set[str] = set()
        self.local_types = self._seed_local_types()

    # -- local type environment ---------------------------------------
    def _seed_local_types(self) -> Dict[str, Set[str]]:
        symtab, fn = self.symtab, self.fn
        types: Dict[str, Set[str]] = dict(
            symtab._param_types(fn.module, fn.node))
        if self.self_name is not None and fn.cls is not None:
            types[self.self_name] = {fn.cls}
        # Two passes so `x = make(); y = x` chains settle.
        for _ in range(2):
            for node in self._own_nodes():
                target = value = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                    if isinstance(target, ast.Name):
                        hinted = symtab.annotation_classes(
                            fn.module, node.annotation)
                        if hinted:
                            types.setdefault(target.id, set()).update(hinted)
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    if isinstance(node.target, ast.Name):
                        elems = symtab.expr_classes(
                            fn.module, node.iter, types)
                        if elems:
                            types.setdefault(node.target.id,
                                             set()).update(elems)
                    continue
                if isinstance(target, ast.Name) and value is not None:
                    hit = symtab.expr_classes(fn.module, value, types)
                    if hit:
                        types.setdefault(target.id, set()).update(hit)
                    elif self._is_builtin_container(value):
                        self.builtin_locals.add(target.id)
        return types

    def _is_builtin_container(self, value: ast.AST) -> bool:
        if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.Tuple,
                              ast.DictComp, ast.ListComp, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            imap = self.symtab.imports.get(self.fn.module)
            resolved = imap.resolve_call(value.func) if imap else None
            return (resolved in BUILTIN_CONTAINERS
                    or resolved in SYNC_PRIMITIVES)
        return False

    def _own_nodes(self) -> Iterable[ast.AST]:
        """Every node of this function, minus nested class bodies."""
        if isinstance(self.fn.node, ast.Module):
            body = [n for n in self.fn.node.body
                    if not isinstance(n, (ast.FunctionDef,
                                          ast.AsyncFunctionDef,
                                          ast.ClassDef))]
        else:
            body = list(getattr(self.fn.node, "body", ()))
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    continue
                stack.append(child)

    # -- edge emission -------------------------------------------------
    def walk(self) -> None:
        if isinstance(self.fn.node, ast.Module):
            body = [n for n in self.fn.node.body
                    if not isinstance(n, (ast.FunctionDef,
                                          ast.AsyncFunctionDef,
                                          ast.ClassDef))]
            for stmt in body:
                self._visit(stmt, under_lock=False)
        else:
            for stmt in getattr(self.fn.node, "body", ()):
                self._visit(stmt, under_lock=False)

    def _visit(self, node: ast.AST, under_lock: bool) -> None:
        if isinstance(node, ast.ClassDef):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            locked = under_lock
            for item in node.items:
                self._visit(item.context_expr, under_lock)
                if lockish_expr(self.symtab, self.fn.module,
                                item.context_expr):
                    locked = True
            for stmt in node.body:
                self._visit(stmt, locked)
            return
        if isinstance(node, ast.Call):
            self._emit_call(node, under_lock)
        for child in ast.iter_child_nodes(node):
            self._visit(child, under_lock)

    def _add(self, callee: str, node: ast.AST, kind: str,
             under_lock: bool) -> None:
        self.edges.append(Edge(
            caller=self.fn.qualname, callee=callee,
            line=getattr(node, "lineno", self.fn.lineno),
            kind=kind, under_lock=under_lock))

    def _emit_call(self, call: ast.Call, under_lock: bool) -> None:
        symtab, fn = self.symtab, self.fn
        func = call.func
        dotted = dotted_name(func)

        # 1. plain dotted resolution through imports / module locals —
        #    but never through a name a local variable shadows.
        if dotted is not None:
            head = dotted.split(".", 1)[0]
            shadowed = head in self.local_types and head != self.self_name
            if not shadowed:
                qual = symtab.resolve(fn.module, dotted)
                if qual is not None:
                    self._add_resolved(qual, call, under_lock)
                    return
                imap = symtab.imports.get(fn.module)
                external = (imap.resolve_imported(func)
                            if imap is not None else None)
                if external is not None:
                    self._add(external, call, "external", under_lock)
                    return

        # 2. attribute call: type the receiver.
        if isinstance(func, ast.Attribute):
            name = func.attr
            receivers = symtab.expr_classes(fn.module, func.value,
                                            self.local_types)
            if receivers:
                hit = False
                for cls_qual in sorted(receivers):
                    method = symtab.lookup_method(cls_qual, name)
                    if method is not None:
                        hit = True
                        self._add(method, call, "direct", under_lock)
                        for override in symtab.overrides(method):
                            self._add(override, call, "widened", under_lock)
                if hit:
                    return
            if self._builtin_receiver(func.value):
                return          # stdlib container method: no dispatch
            self._widen_by_name(name, call, under_lock)
            return

        # 3. bare-name call of a local (lambda, bound method, probe fn).
        if isinstance(func, ast.Name):
            alias_methods = self._alias_methods(func.id)
            if alias_methods:
                for method_name in sorted(alias_methods):
                    self._widen_by_name(method_name, call, under_lock)
                return
            if func.id in _PURE_BUILTINS:
                return          # len()/sorted()/... add nothing but bulk
            self._add(f"{UNKNOWN_PREFIX}.{func.id}", call, "unknown",
                      under_lock)
            return

        # 4. computed callee (subscript, call-returning-callable, ...).
        self._add(f"{UNKNOWN_PREFIX}.<computed>", call, "unknown",
                  under_lock)

    def _add_resolved(self, qual: str, call: ast.Call,
                      under_lock: bool) -> None:
        symtab = self.symtab
        if qual in symtab.classes:
            ctor = symtab.lookup_method(qual, "__init__")
            if ctor is not None:
                self._add(ctor, call, "direct", under_lock)
            return
        fn = symtab.functions.get(qual)
        if fn is not None:
            self._add(qual, call, "direct", under_lock)
            for override in symtab.overrides(qual):
                self._add(override, call, "widened", under_lock)
            return
        if qual in symtab.modules:
            return              # calling a module never happens; ignore
        self._add(qual, call, "external", under_lock)

    def _builtin_receiver(self, receiver: ast.AST) -> bool:
        """Receiver provably a builtin container (local or self attr)."""
        if isinstance(receiver, ast.Name):
            return receiver.id in self.builtin_locals
        if isinstance(receiver, ast.Attribute) \
                and isinstance(receiver.value, ast.Name) \
                and receiver.value.id == self.self_name \
                and self.fn.cls is not None:
            return self.symtab.is_builtin_attr(self.fn.cls, receiver.attr)
        return False

    def _alias_methods(self, name: str) -> Set[str]:
        """Bound-method alias names a bare local call might dispatch to.

        ``self._consume(...)`` arrives here only when ``_consume`` is a
        *local*; for attributes the attribute path handles it — so look
        at both the own class's attr_methods and nothing else.
        """
        if self.fn.cls is None:
            return set()
        cls = self.symtab.classes.get(self.fn.cls)
        if cls is None:
            return set()
        return set(cls.attr_methods.get(name, ()))

    def _widen_by_name(self, name: str, call: ast.Call,
                       under_lock: bool) -> None:
        # Bound-method alias attributes first: self._forward(...)
        if self.fn.cls is not None:
            cls = self.symtab.classes.get(self.fn.cls)
            if cls is not None and name in cls.attr_methods:
                for method_name in sorted(cls.attr_methods[name]):
                    self._widen_methods(method_name, call, under_lock)
                return
        self._widen_methods(name, call, under_lock)

    def _widen_methods(self, name: str, call: ast.Call,
                       under_lock: bool) -> None:
        candidates = self.symtab.methods_by_name.get(name, ())
        if candidates and len(candidates) <= _MAX_WIDEN:
            for method in candidates:
                self._add(method.qualname, call, "widened", under_lock)
        self._add(f"{UNKNOWN_PREFIX}.{name}", call, "unknown", under_lock)
