#!/usr/bin/env python3
"""Validate a telemetry JSONL stream against the event wire contract.

Every line must be a JSON object carrying ``ts`` (number), ``name``
(non-empty string), ``kind`` (one of the known kinds), and either
``value`` (number) or ``duration_s`` (non-negative number).  Span
events must also carry ``path`` and ``depth``; the monitor's
``link_sample`` / ``link_down`` / ``link_up`` events must carry their
per-kind fields (``link``, ``t``, and for samples ``utilization`` /
``rate`` / ``capacity`` / ``active_flows``).  One-off ``event`` lines
must use a *registered* event name — unknown event types fail the
check instead of sliding through unvalidated.  See
``docs/observability.md`` for the contract.

Usage::

    python tools/check_telemetry.py run.jsonl [--min-names N]

Exits 0 when every line validates (and, with ``--min-names``, when at
least N distinct metric/span names appear); prints the offending line
and exits 1 otherwise.  Used by ``make telemetry-smoke``,
``make monitor-smoke`` and CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

KINDS = {
    "counter", "gauge", "histogram", "timer", "span", "event",
    "link_sample", "link_down", "link_up",
}

#: The contract's one-off event names (kind == "event").  Anything not
#: listed here is an unknown event type and fails validation — add new
#: names here *and* to docs/observability.md when instrumenting.
KNOWN_EVENT_NAMES = {
    "core.profiling.skipped_candidate",
    "core.reconfigure.converter_retry",
    "core.reconfigure.batch_rollback",
    "core.failures.heal",
    "flowsim.flow_rerouted",
}


def _numeric(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_event_time(event: dict, problems: List[str], label: str) -> None:
    t = event.get("t")
    if not _numeric(t):
        problems.append(f"{label} missing numeric 't'")
    elif t < 0:
        problems.append(f"negative {label} time {t}")


def _check_counted(event: dict, problems: List[str], label: str,
                   field_name: str, minimum: int = 0) -> None:
    value = event.get(field_name)
    if not isinstance(value, int) or isinstance(value, bool):
        problems.append(f"{label} missing integer {field_name!r}")
    elif value < minimum:
        problems.append(f"{label} {field_name!r} below {minimum}: {value}")


def _check_converter_retry(event: dict, problems: List[str]) -> None:
    converter = event.get("converter")
    if not isinstance(converter, str) or not converter.strip():
        problems.append("converter_retry missing non-empty 'converter'")
    _check_counted(event, problems, "converter_retry", "attempt", minimum=1)
    _check_counted(event, problems, "converter_retry", "batch")
    if event.get("fault") not in ("timeout", "nack"):
        problems.append(
            "converter_retry 'fault' must be 'timeout' or 'nack'"
        )
    _check_event_time(event, problems, "converter_retry")


def _check_batch_rollback(event: dict, problems: List[str]) -> None:
    _check_counted(event, problems, "batch_rollback", "batch")
    _check_counted(event, problems, "batch_rollback", "converters", minimum=1)
    reason = event.get("reason")
    if not isinstance(reason, str) or not reason.strip():
        problems.append("batch_rollback missing non-empty 'reason'")
    _check_event_time(event, problems, "batch_rollback")


def _check_heal(event: dict, problems: List[str]) -> None:
    _check_counted(event, problems, "heal", "reconfigured")
    _check_counted(event, problems, "heal", "unrecoverable")
    _check_event_time(event, problems, "heal")


def _check_flow_rerouted(event: dict, problems: List[str]) -> None:
    _check_counted(event, problems, "flow_rerouted", "flow_id")
    if event.get("outcome") not in ("rerouted", "failed"):
        problems.append(
            "flow_rerouted 'outcome' must be 'rerouted' or 'failed'"
        )
    _check_event_time(event, problems, "flow_rerouted")


#: Per-name schema checks for registered one-off events.
EVENT_CHECKS = {
    "core.reconfigure.converter_retry": _check_converter_retry,
    "core.reconfigure.batch_rollback": _check_batch_rollback,
    "core.failures.heal": _check_heal,
    "flowsim.flow_rerouted": _check_flow_rerouted,
}


def _check_link_fields(event: dict, problems: List[str]) -> None:
    link = event.get("link")
    if not isinstance(link, str) or not link.strip():
        problems.append("link event missing non-empty 'link'")
    t = event.get("t")
    if not _numeric(t):
        problems.append("link event missing numeric 't'")
    elif t < 0:
        problems.append(f"negative link event time {t}")


def _check_link_sample(event: dict, problems: List[str]) -> None:
    for field_name in ("utilization", "rate", "capacity"):
        value = event.get(field_name)
        if not _numeric(value):
            problems.append(f"link_sample missing numeric {field_name!r}")
        elif value < 0:
            problems.append(f"negative {field_name!r} {value}")
    if event.get("capacity") == 0:
        problems.append("link_sample has zero 'capacity'")
    active = event.get("active_flows")
    if not isinstance(active, int) or isinstance(active, bool) or active < 0:
        problems.append(
            "link_sample missing non-negative integer 'active_flows'"
        )


def check_line(line: str, lineno: int) -> List[str]:
    """Return a list of problems with one JSONL line (empty = valid)."""
    problems: List[str] = []
    try:
        event = json.loads(line)
    except json.JSONDecodeError as exc:
        return [f"not valid JSON: {exc}"]
    if not isinstance(event, dict):
        return ["not a JSON object"]

    ts = event.get("ts")
    if not _numeric(ts):
        problems.append("missing/non-numeric 'ts'")
    name = event.get("name")
    if not isinstance(name, str) or not name.strip():
        problems.append("missing/empty 'name'")
    kind = event.get("kind")
    if kind not in KINDS:
        problems.append(
            f"unknown 'kind' {kind!r} (expected one of {sorted(KINDS)})"
        )

    has_value = _numeric(event.get("value"))
    duration = event.get("duration_s")
    has_duration = _numeric(duration)
    if not has_value and not has_duration:
        problems.append("needs a numeric 'value' or 'duration_s'")
    if has_duration and duration < 0:
        problems.append(f"negative 'duration_s' {duration}")

    if kind == "span":
        if not isinstance(event.get("path"), str):
            problems.append("span missing 'path'")
        if not isinstance(event.get("depth"), int):
            problems.append("span missing integer 'depth'")
    elif kind == "event":
        if isinstance(name, str) and name not in KNOWN_EVENT_NAMES:
            problems.append(
                f"unknown event type {name!r} (known: "
                f"{sorted(KNOWN_EVENT_NAMES)}; register new one-off "
                f"events in tools/check_telemetry.py and the docs)"
            )
        check = EVENT_CHECKS.get(name) if isinstance(name, str) else None
        if check is not None:
            check(event, problems)
    elif kind in ("link_sample", "link_down", "link_up"):
        _check_link_fields(event, problems)
        if kind == "link_sample":
            _check_link_sample(event, problems)
    return problems


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="JSONL file emitted under --telemetry")
    parser.add_argument(
        "--min-names",
        type=int,
        default=0,
        metavar="N",
        help="require at least N distinct event names (coverage check)",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.path, "r", encoding="utf-8") as stream:
            lines = [line for line in stream.read().splitlines() if line.strip()]
    except OSError as exc:
        print(f"check_telemetry: cannot read {args.path}: {exc}", file=sys.stderr)
        return 1

    if not lines:
        print(f"check_telemetry: {args.path} has no events", file=sys.stderr)
        return 1

    errors = 0
    names = set()
    for lineno, line in enumerate(lines, start=1):
        problems = check_line(line, lineno)
        if problems:
            errors += 1
            print(
                f"check_telemetry: {args.path}:{lineno}: "
                + "; ".join(problems),
                file=sys.stderr,
            )
            print(f"  {line}", file=sys.stderr)
        else:
            names.add(json.loads(line)["name"])

    if errors:
        print(
            f"check_telemetry: {errors}/{len(lines)} invalid lines",
            file=sys.stderr,
        )
        return 1
    if len(names) < args.min_names:
        print(
            f"check_telemetry: only {len(names)} distinct names "
            f"(need {args.min_names}): {sorted(names)}",
            file=sys.stderr,
        )
        return 1
    print(
        f"check_telemetry: {args.path} OK — "
        f"{len(lines)} events, {len(names)} distinct names"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
