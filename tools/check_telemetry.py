#!/usr/bin/env python3
"""Validate a telemetry JSONL stream against the event wire contract.

The contract itself — legal ``kind`` values, the one-off event-name
registry, per-kind and per-name schemas — lives in
:mod:`repro.obs.contract`, shared with the ``tools.flatlint`` static
pass (rule FT002) so the three checkers can never drift.  This script
is the runtime half: it replays a JSONL file through the contract's
``check_line`` and reports every violating line.  See
``docs/observability.md`` for the contract prose.

Usage::

    python tools/check_telemetry.py run.jsonl [--min-names N]

Exits 0 when every line validates (and, with ``--min-names``, when at
least N distinct metric/span names appear); prints the offending line
and exits 1 otherwise.  Used by ``make telemetry-smoke``,
``make monitor-smoke`` and CI.  Runs standalone from a repo checkout:
when ``repro`` is not already importable it adds the sibling ``src/``
directory to ``sys.path``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

try:
    from repro.obs import contract
except ImportError:  # standalone invocation: python tools/check_telemetry.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.obs import contract

#: Re-exported for callers that treated this script as the registry.
KINDS = contract.KINDS
KNOWN_EVENT_NAMES = contract.KNOWN_EVENT_NAMES
check_line = contract.check_line


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="JSONL file emitted under --telemetry")
    parser.add_argument(
        "--min-names",
        type=int,
        default=0,
        metavar="N",
        help="require at least N distinct event names (coverage check)",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.path, "r", encoding="utf-8") as stream:
            lines = [line for line in stream.read().splitlines() if line.strip()]
    except OSError as exc:
        print(f"check_telemetry: cannot read {args.path}: {exc}", file=sys.stderr)
        return 1

    if not lines:
        print(f"check_telemetry: {args.path} has no events", file=sys.stderr)
        return 1

    errors = 0
    names = set()
    for lineno, line in enumerate(lines, start=1):
        problems = check_line(line, lineno)
        if problems:
            errors += 1
            print(
                f"check_telemetry: {args.path}:{lineno}: "
                + "; ".join(problems),
                file=sys.stderr,
            )
            print(f"  {line}", file=sys.stderr)
        else:
            names.add(json.loads(line)["name"])

    if errors:
        print(
            f"check_telemetry: {errors}/{len(lines)} invalid lines",
            file=sys.stderr,
        )
        return 1
    if len(names) < args.min_names:
        print(
            f"check_telemetry: only {len(names)} distinct names "
            f"(need {args.min_names}): {sorted(names)}",
            file=sys.stderr,
        )
        return 1
    print(
        f"check_telemetry: {args.path} OK — "
        f"{len(lines)} events, {len(names)} distinct names"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
