#!/usr/bin/env python3
"""Validate a telemetry JSONL stream against the event wire contract.

Every line must be a JSON object carrying ``ts`` (number), ``name``
(non-empty string), ``kind`` (one of the known kinds), and either
``value`` (number) or ``duration_s`` (non-negative number).  Span
events must also carry ``path`` and ``depth``.  See
``docs/observability.md`` for the contract.

Usage::

    python tools/check_telemetry.py run.jsonl [--min-names N]

Exits 0 when every line validates (and, with ``--min-names``, when at
least N distinct metric/span names appear); prints the offending line
and exits 1 otherwise.  Used by ``make telemetry-smoke`` and CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

KINDS = {"counter", "gauge", "histogram", "timer", "span", "event"}


def check_line(line: str, lineno: int) -> List[str]:
    """Return a list of problems with one JSONL line (empty = valid)."""
    problems: List[str] = []
    try:
        event = json.loads(line)
    except json.JSONDecodeError as exc:
        return [f"not valid JSON: {exc}"]
    if not isinstance(event, dict):
        return ["not a JSON object"]

    ts = event.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool):
        problems.append("missing/non-numeric 'ts'")
    name = event.get("name")
    if not isinstance(name, str) or not name.strip():
        problems.append("missing/empty 'name'")
    kind = event.get("kind")
    if kind not in KINDS:
        problems.append(f"unknown 'kind' {kind!r} (expected one of {sorted(KINDS)})")

    has_value = isinstance(event.get("value"), (int, float))
    duration = event.get("duration_s")
    has_duration = isinstance(duration, (int, float)) and not isinstance(
        duration, bool
    )
    if not has_value and not has_duration:
        problems.append("needs a numeric 'value' or 'duration_s'")
    if has_duration and duration < 0:
        problems.append(f"negative 'duration_s' {duration}")

    if kind == "span":
        if not isinstance(event.get("path"), str):
            problems.append("span missing 'path'")
        if not isinstance(event.get("depth"), int):
            problems.append("span missing integer 'depth'")
    return problems


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="JSONL file emitted under --telemetry")
    parser.add_argument(
        "--min-names",
        type=int,
        default=0,
        metavar="N",
        help="require at least N distinct event names (coverage check)",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.path, "r", encoding="utf-8") as stream:
            lines = [line for line in stream.read().splitlines() if line.strip()]
    except OSError as exc:
        print(f"check_telemetry: cannot read {args.path}: {exc}", file=sys.stderr)
        return 1

    if not lines:
        print(f"check_telemetry: {args.path} has no events", file=sys.stderr)
        return 1

    errors = 0
    names = set()
    for lineno, line in enumerate(lines, start=1):
        problems = check_line(line, lineno)
        if problems:
            errors += 1
            print(
                f"check_telemetry: {args.path}:{lineno}: "
                + "; ".join(problems),
                file=sys.stderr,
            )
            print(f"  {line}", file=sys.stderr)
        else:
            names.add(json.loads(line)["name"])

    if errors:
        print(
            f"check_telemetry: {errors}/{len(lines)} invalid lines",
            file=sys.stderr,
        )
        return 1
    if len(names) < args.min_names:
        print(
            f"check_telemetry: only {len(names)} distinct names "
            f"(need {args.min_names}): {sorted(names)}",
            file=sys.stderr,
        )
        return 1
    print(
        f"check_telemetry: {args.path} OK — "
        f"{len(lines)} events, {len(names)} distinct names"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
