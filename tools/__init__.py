"""Repo tooling: the JSONL telemetry validator and the flatlint static pass."""
